package pathcache

import (
	"dpbp/internal/obs"
	"testing"

	"dpbp/internal/path"
)

func small() Config {
	return Config{Entries: 32, Ways: 4, TrainInterval: 8, Threshold: 0.10}
}

func TestAllocateOnMispredictOnly(t *testing.T) {
	c := New(small())
	c.Observe(path.ID(1), false)
	if c.Stats.Allocations != 0 || c.Stats.AllocsAvoided != 1 {
		t.Errorf("correctly predicted miss allocated: %+v", c.Stats)
	}
	c.Observe(path.ID(1), true)
	if c.Stats.Allocations != 1 {
		t.Errorf("mispredicted miss not allocated: %+v", c.Stats)
	}
	// Now it hits.
	c.Observe(path.ID(1), false)
	if c.Stats.Hits != 1 {
		t.Errorf("hit not counted: %+v", c.Stats)
	}
}

func TestAllocateAlwaysAblation(t *testing.T) {
	cfg := small()
	cfg.AllocateAlways = true
	c := New(cfg)
	c.Observe(path.ID(1), false)
	if c.Stats.Allocations != 1 {
		t.Error("AllocateAlways did not allocate on correct prediction")
	}
}

func TestDifficultBitAfterInterval(t *testing.T) {
	c := New(small())
	id := path.ID(7)
	// 8 occurrences, 4 mispredicted: rate 0.5 > 0.10 -> difficult.
	for i := 0; i < 8; i++ {
		c.Observe(id, i%2 == 0)
	}
	if !c.Difficult(id) {
		t.Fatal("path with 50% misprediction not difficult after interval")
	}
	if c.Stats.DifficultSet != 1 {
		t.Errorf("DifficultSet = %d", c.Stats.DifficultSet)
	}
	// Next interval with no mispredictions clears the bit.
	for i := 0; i < 8; i++ {
		c.Observe(id, false)
	}
	if c.Difficult(id) {
		t.Fatal("difficult bit not cleared after easy interval")
	}
	if c.Stats.DifficultCleared != 1 {
		t.Errorf("DifficultCleared = %d", c.Stats.DifficultCleared)
	}
}

func TestEasyPathNeverDifficult(t *testing.T) {
	c := New(small())
	id := path.ID(9)
	c.Observe(id, true) // allocate
	for i := 0; i < 100; i++ {
		c.Observe(id, false)
	}
	// One early misprediction out of 8 in the first interval is 12.5% > T,
	// so it may be difficult after interval 1, but later intervals clear.
	if c.Difficult(id) {
		t.Error("long-easy path still difficult")
	}
}

func TestPromotionDemotionFlow(t *testing.T) {
	c := New(small())
	id := path.ID(11)
	var promoted bool
	for i := 0; i < 8; i++ {
		ev := c.Observe(id, true)
		if ev.Promote {
			promoted = true
			c.SetPromoted(id, true)
		}
	}
	if !promoted {
		t.Fatal("all-mispredicted path never requested promotion")
	}
	if !c.Promoted(id) {
		t.Fatal("Promoted bit not set")
	}
	if c.Stats.Promotions != 1 {
		t.Errorf("Promotions = %d", c.Stats.Promotions)
	}
	// While promoted and still difficult, no duplicate requests.
	ev := c.Observe(id, true)
	if ev.Promote {
		t.Error("promotion re-requested while promoted")
	}
	// A clean interval demotes.
	var demoted bool
	for i := 0; i < 16; i++ {
		if c.Observe(id, false).Demote {
			demoted = true
		}
	}
	if !demoted {
		t.Fatal("no demotion after easy intervals")
	}
	if c.Promoted(id) {
		t.Error("Promoted bit survived demotion")
	}
	if c.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d", c.Stats.Demotions)
	}
}

func TestBuilderRefusalRetries(t *testing.T) {
	c := New(small())
	id := path.ID(13)
	for i := 0; i < 8; i++ {
		c.Observe(id, true)
	}
	ev := c.Observe(id, true)
	if !ev.Promote {
		t.Fatal("expected promotion request")
	}
	c.SetPromoted(id, false) // builder busy
	ev = c.Observe(id, true)
	if !ev.Promote {
		t.Error("promotion request should repeat after builder refusal")
	}
}

func TestLRUPrefersNonDifficultVictims(t *testing.T) {
	// 1 set x 4 ways.
	cfg := Config{Entries: 4, Ways: 4, TrainInterval: 4, Threshold: 0.10}
	c := New(cfg)
	// Fill 4 ways; make ids 1 and 2 difficult.
	for id := path.ID(1); id <= 4; id++ {
		for i := 0; i < 4; i++ {
			c.Observe(id, id <= 2)
		}
	}
	if !c.Difficult(1) || !c.Difficult(2) || c.Difficult(3) || c.Difficult(4) {
		t.Fatal("setup wrong")
	}
	// Touch 3 so 4 is LRU among non-difficult.
	c.Observe(path.ID(3), false)
	// Insert a new mispredicted path; victim should be 4, not 1/2.
	c.Observe(path.ID(99), true)
	if !c.Difficult(1) || !c.Difficult(2) {
		t.Error("difficult entry evicted despite easy victims")
	}
	if c.lookup(path.ID(4)) != nil {
		t.Error("expected id 4 to be evicted")
	}
	if c.lookup(path.ID(99)) == nil {
		t.Error("new path not inserted")
	}
}

func TestLRUFallbackWhenAllDifficult(t *testing.T) {
	cfg := Config{Entries: 2, Ways: 2, TrainInterval: 2, Threshold: 0.10}
	c := New(cfg)
	for id := path.ID(1); id <= 2; id++ {
		c.Observe(id, true)
		c.Observe(id, true)
	}
	if !c.Difficult(1) || !c.Difficult(2) {
		t.Fatal("setup wrong")
	}
	// Must still be able to allocate.
	c.Observe(path.ID(50), true)
	if c.lookup(path.ID(50)) == nil {
		t.Error("allocation failed with all-difficult set")
	}
	if c.Stats.Replacements != 1 {
		t.Errorf("Replacements = %d", c.Stats.Replacements)
	}
}

func TestPlainLRUAblation(t *testing.T) {
	cfg := Config{Entries: 2, Ways: 2, TrainInterval: 2, Threshold: 0.10, PlainLRU: true}
	c := New(cfg)
	// id 1 difficult and old; id 2 easy and recent.
	c.Observe(path.ID(1), true)
	c.Observe(path.ID(1), true)
	c.Observe(path.ID(2), true)
	c.Observe(path.ID(2), false)
	// Plain LRU evicts id 1 (oldest) even though difficult.
	c.Observe(path.ID(50), true)
	if c.lookup(path.ID(1)) != nil {
		t.Error("plain LRU should evict oldest regardless of difficulty")
	}
}

func TestDifficultCountAndAvoidedFraction(t *testing.T) {
	c := New(small())
	for id := path.ID(1); id <= 3; id++ {
		for i := 0; i < 8; i++ {
			c.Observe(id, true)
		}
	}
	if got := c.DifficultCount(); got != 3 {
		t.Errorf("DifficultCount = %d, want 3", got)
	}
	c.Observe(path.ID(100), false) // avoided alloc
	if f := c.AllocAvoidedFraction(); f <= 0 || f > 1 {
		t.Errorf("AllocAvoidedFraction = %f", f)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	c := New(Config{})
	if len(c.sets) == 0 {
		t.Fatal("zero config produced empty cache")
	}
	// Interval defaults to 32; threshold 0 means any misprediction makes
	// a path difficult, which is a valid (if aggressive) setting.
	id := path.ID(5)
	for i := 0; i < 32; i++ {
		c.Observe(id, true)
	}
	if !c.Difficult(id) {
		t.Error("default interval did not trigger at 32")
	}
}

func TestCapacityRoundsDownToPowerOfTwo(t *testing.T) {
	cases := []struct {
		entries, ways, wantSets, wantCap int
	}{
		{8192, 8, 1024, 8192},   // paper default: already a power of two
		{6144, 8, 512, 4096},    // 6K/8-way: 768 sets rounds DOWN, not up to 1024
		{4, 4, 1, 4},            // single set
		{3, 8, 1, 8},            // fewer entries than ways: min one set
		{100, 4, 16, 64},        // 25 sets -> 16
		{1 << 10, 2, 512, 1024}, // power of two stays exact
	}
	for _, tc := range cases {
		c := New(Config{Entries: tc.entries, Ways: tc.ways, TrainInterval: 8, Threshold: 0.10})
		if len(c.sets) != tc.wantSets {
			t.Errorf("Entries=%d Ways=%d: sets = %d, want %d", tc.entries, tc.ways, len(c.sets), tc.wantSets)
		}
		if got := c.Capacity(); got != tc.wantCap {
			t.Errorf("Entries=%d Ways=%d: Capacity = %d, want %d", tc.entries, tc.ways, got, tc.wantCap)
		}
		if c.Capacity() > tc.entries && tc.entries >= tc.ways {
			t.Errorf("Entries=%d: effective capacity %d exceeds configured entries", tc.entries, c.Capacity())
		}
	}
}

func TestPromotionsRejectedCounted(t *testing.T) {
	c := New(small())
	id := path.ID(13)
	for i := 0; i < 8; i++ {
		c.Observe(id, true)
	}
	c.SetPromoted(id, false) // builder busy
	c.SetPromoted(id, false) // still busy
	if c.Stats.PromotionsRejected != 2 {
		t.Errorf("PromotionsRejected = %d, want 2", c.Stats.PromotionsRejected)
	}
	if c.Stats.Demotions != 0 {
		t.Errorf("refusals on a non-promoted entry counted demotions: %d", c.Stats.Demotions)
	}
	c.SetPromoted(path.ID(999), false) // unknown path: no-op
	if c.Stats.PromotionsRejected != 2 {
		t.Error("refusal counted for a path not in the cache")
	}
}

func TestRejectionOnPromotedEntryCountsDemotion(t *testing.T) {
	c := New(small())
	id := path.ID(17)
	for i := 0; i < 8; i++ {
		c.Observe(id, true)
	}
	c.SetPromoted(id, true)
	if c.Stats.Promotions != 1 || !c.Promoted(id) {
		t.Fatal("setup wrong")
	}
	// A refusal that clears a set Promoted bit is both a rejection and a
	// demotion: the bit transitions 1->0.
	c.SetPromoted(id, false)
	if c.Promoted(id) {
		t.Error("Promoted bit survived refusal")
	}
	if c.Stats.PromotionsRejected != 1 {
		t.Errorf("PromotionsRejected = %d, want 1", c.Stats.PromotionsRejected)
	}
	if c.Stats.Demotions != 1 {
		t.Errorf("Demotions = %d, want 1 (bit transitioned 1->0)", c.Stats.Demotions)
	}
	// Re-promoting counts a fresh promotion.
	c.SetPromoted(id, true)
	if c.Stats.Promotions != 2 {
		t.Errorf("Promotions = %d, want 2", c.Stats.Promotions)
	}
}

func TestVictimPrefersInvalidSlot(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, TrainInterval: 4, Threshold: 0.10}
	c := New(cfg)
	c.Observe(path.ID(1), true)
	e, replaced := c.victim(path.ID(2))
	if replaced {
		t.Error("victim reported replacement with invalid slots free")
	}
	if e == nil || e.valid {
		t.Error("victim did not pick an invalid slot")
	}
}

func TestVictimAllDifficultFallback(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, TrainInterval: 2, Threshold: 0.10}
	c := New(cfg)
	// Fill all 4 ways with difficult entries, in id order, so id 1 holds
	// the oldest lru tick.
	for id := path.ID(1); id <= 4; id++ {
		c.Observe(id, true)
		c.Observe(id, true)
	}
	for id := path.ID(1); id <= 4; id++ {
		if !c.Difficult(id) {
			t.Fatal("setup wrong")
		}
	}
	e, replaced := c.victim(path.ID(50))
	if !replaced {
		t.Error("full set must report a replacement")
	}
	if e.id != path.ID(1) {
		t.Errorf("all-difficult fallback picked id %d, want overall LRU id 1", e.id)
	}
}

func TestVictimPlainLRUIgnoresDifficulty(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, TrainInterval: 2, Threshold: 0.10, PlainLRU: true}
	c := New(cfg)
	// id 1: difficult, oldest. ids 2-4: easy, newer.
	c.Observe(path.ID(1), true)
	c.Observe(path.ID(1), true)
	for id := path.ID(2); id <= 4; id++ {
		c.Observe(id, true)
		c.Observe(id, false)
	}
	e, replaced := c.victim(path.ID(50))
	if !replaced || e.id != path.ID(1) {
		t.Errorf("PlainLRU victim = id %d (replaced=%v), want oldest id 1", e.id, replaced)
	}
}

func TestVictimLRUOrdering(t *testing.T) {
	cfg := Config{Entries: 4, Ways: 4, TrainInterval: 64, Threshold: 0.10}
	c := New(cfg)
	// Fill the set; no entry trains to difficult (interval 64 never
	// elapses), so selection is pure LRU over monotonically increasing
	// ticks (uint64 ticks cannot wrap within a run).
	for id := path.ID(1); id <= 4; id++ {
		c.Observe(id, true)
	}
	// Touch 1 and 3; LRU order is now 2, 4, 1, 3.
	c.Observe(path.ID(1), false)
	c.Observe(path.ID(3), false)
	e, replaced := c.victim(path.ID(50))
	if !replaced || e.id != path.ID(2) {
		t.Errorf("victim = id %d (replaced=%v), want LRU id 2", e.id, replaced)
	}
	// Touch 2; next victim is 4.
	c.Observe(path.ID(2), false)
	e, _ = c.victim(path.ID(50))
	if e.id != path.ID(4) {
		t.Errorf("victim after touching 2 = id %d, want 4", e.id)
	}
}

func TestTraceEmitsPathCacheEvents(t *testing.T) {
	cfg := Config{Entries: 2, Ways: 2, TrainInterval: 2, Threshold: 0.10}
	c := New(cfg)
	tr := obs.NewTracer()
	c.Trace = tr
	// Two allocations into invalid ways, then an eviction.
	c.Observe(path.ID(1), true)
	c.Observe(path.ID(2), true)
	c.Observe(path.ID(3), true)
	if got := tr.Count(obs.KindPathAlloc); got != 2 {
		t.Errorf("alloc events = %d, want 2", got)
	}
	if got := tr.Count(obs.KindPathReplace); got != 1 {
		t.Errorf("replace events = %d, want 1", got)
	}
	// Train id 3 difficult, promote, reject, demote via refusal.
	c.Observe(path.ID(3), true)
	c.SetPromoted(path.ID(3), true)
	c.SetPromoted(path.ID(3), false)
	if got := tr.Count(obs.KindPathPromote); got != 1 {
		t.Errorf("promote events = %d, want 1", got)
	}
	if got := tr.Count(obs.KindPathPromoteRejected); got != 1 {
		t.Errorf("rejected events = %d, want 1", got)
	}
	if got := tr.Count(obs.KindPathDemote); got != uint64(c.Stats.Demotions) {
		t.Errorf("demote events = %d, stats say %d", got, c.Stats.Demotions)
	}
	// Event counts reconcile with Stats exactly.
	if tr.Count(obs.KindPathAlloc)+tr.Count(obs.KindPathReplace) != c.Stats.Allocations {
		t.Errorf("alloc+replace events %d+%d != Stats.Allocations %d",
			tr.Count(obs.KindPathAlloc), tr.Count(obs.KindPathReplace), c.Stats.Allocations)
	}
	if tr.Count(obs.KindPathReplace) != c.Stats.Replacements {
		t.Errorf("replace events != Stats.Replacements")
	}
}
