package pathcache

import (
	"testing"

	"dpbp/internal/obs"
)

// TestResetDetachesTracer is the regression test for a leaked trace hook:
// a tracer wired for one run must not receive the next run's events
// through a reset cache. The owner (the timing core) re-attaches its own
// tracer after Reset.
func TestResetDetachesTracer(t *testing.T) {
	c := New(DefaultConfig())
	c.Trace = obs.NewTracer()

	c.Observe(42, true)
	c.Reset()

	if c.Trace != nil {
		t.Fatal("tracer survived Reset: events would leak into the next run")
	}
	if c.Stats != (Stats{}) {
		t.Fatalf("stats survived Reset: %+v", c.Stats)
	}
}
