package pathcache

// Reference-model property test: a direct-mapped-on-paths oracle with
// unbounded capacity tracks difficulty per path; the real Path Cache must
// agree with it whenever the path was never evicted (we force that by
// using few paths relative to capacity).

import (
	"math/rand"
	"testing"

	"dpbp/internal/path"
)

// refEntry mirrors the training-interval state machine.
type refEntry struct {
	occ, mis  int
	difficult bool
}

func TestMatchesReferenceModelWithoutEvictions(t *testing.T) {
	cfg := Config{Entries: 256, Ways: 8, TrainInterval: 8, Threshold: 0.10}
	c := New(cfg)
	ref := map[path.ID]*refEntry{}
	allocated := map[path.ID]bool{}
	rng := rand.New(rand.NewSource(17))

	const nPaths = 16 // far below capacity: no evictions possible
	for step := 0; step < 20_000; step++ {
		id := path.ID(rng.Intn(nPaths) + 1)
		// Per-path misprediction probability: id 1..8 hard, rest easy.
		miss := rng.Float64() < map[bool]float64{true: 0.5, false: 0.01}[id <= 8]

		c.Observe(id, miss)

		// Reference: allocate-on-mispredict, then interval training.
		e := ref[id]
		if e == nil {
			if !miss {
				continue
			}
			e = &refEntry{}
			ref[id] = e
			allocated[id] = true
		}
		e.occ++
		if miss {
			e.mis++
		}
		if e.occ >= cfg.TrainInterval {
			e.difficult = float64(e.mis)/float64(e.occ) > cfg.Threshold
			e.occ, e.mis = 0, 0
		}

		if c.Difficult(id) != e.difficult {
			t.Fatalf("step %d id %d: cache difficult=%v, reference %v",
				step, id, c.Difficult(id), e.difficult)
		}
	}

	// Sanity: the hard paths ended difficult, the easy ones not.
	for id := path.ID(1); id <= 8; id++ {
		if !c.Difficult(id) {
			t.Errorf("hard path %d not difficult at end", id)
		}
	}
	easyDifficult := 0
	for id := path.ID(9); id <= nPaths; id++ {
		if c.Difficult(id) {
			easyDifficult++
		}
	}
	if easyDifficult > 2 {
		t.Errorf("%d easy paths classified difficult", easyDifficult)
	}
	if c.Stats.Replacements != 0 {
		t.Fatalf("evictions occurred (%d); the reference comparison is invalid",
			c.Stats.Replacements)
	}
}

func TestCapacityPressureEvictsEasyFirst(t *testing.T) {
	// With heavy path pressure, difficult entries should survive at a
	// higher rate than easy ones.
	cfg := Config{Entries: 64, Ways: 4, TrainInterval: 8, Threshold: 0.10}
	c := New(cfg)
	rng := rand.New(rand.NewSource(23))
	hard := map[path.ID]bool{}
	for id := path.ID(1); id <= 32; id++ {
		hard[id] = true
	}
	for step := 0; step < 100_000; step++ {
		var id path.ID
		if rng.Intn(2) == 0 {
			id = path.ID(rng.Intn(32) + 1) // recurring hard paths
		} else {
			id = path.ID(rng.Intn(10_000) + 100) // one-off noise paths
		}
		miss := hard[id] && rng.Intn(2) == 0 || !hard[id] && rng.Intn(10) == 0
		c.Observe(id, miss)
	}
	surviving := 0
	for id := path.ID(1); id <= 32; id++ {
		if c.Difficult(id) {
			surviving++
		}
	}
	if surviving < 8 {
		t.Errorf("only %d/32 hard paths survived capacity pressure", surviving)
	}
}
