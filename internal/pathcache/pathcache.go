// Package pathcache implements the Path Cache of Section 4.1: the
// back-end structure that identifies difficult paths at run time.
//
// Each entry tracks one path with an occurrence counter and a
// misprediction counter. At the end of each training interval the entry's
// Difficult bit is set from the measured misprediction rate and the
// counters reset. Allocation is biased toward difficult paths: a new
// entry is allocated only when the terminating branch was mispredicted
// (the paper reports this avoids ~45% of allocations), and replacement
// uses LRU modified to prefer victims whose Difficult bit is clear.
//
// The promotion logic of Section 4.2.1 also lives here: when an update
// leaves an entry Difficult but not Promoted, Observe returns a promotion
// request; when an entry stops being difficult while promoted, it returns
// a demotion request. The caller (the SSMT core) sets the Promoted bit
// once the Microthread Builder accepts the request.
package pathcache

import (
	"dpbp/internal/obs"
	"dpbp/internal/path"
)

// Config sizes and tunes the Path Cache.
type Config struct {
	// Entries is the total entry count (the paper uses 8K).
	Entries int
	// Ways is the set associativity.
	Ways int
	// TrainInterval is the number of occurrences per difficulty
	// measurement (the paper uses 32).
	TrainInterval int
	// Threshold is the difficulty threshold T.
	Threshold float64
	// AllocateAlways disables allocate-on-mispredict (for ablation).
	AllocateAlways bool
	// PlainLRU disables the difficulty-biased replacement (for ablation).
	PlainLRU bool
}

// DefaultConfig returns the paper's configuration: 8K entries, 8-way,
// training interval 32, T = 0.10.
func DefaultConfig() Config {
	return Config{Entries: 8 << 10, Ways: 8, TrainInterval: 32, Threshold: 0.10}
}

// Event tells the caller what an Observe did.
type Event struct {
	// Promote requests microthread construction for the path.
	Promote bool
	// Demote tells the caller the path stopped being difficult and its
	// routine should be retired from the MicroRAM.
	Demote bool
}

// Stats counts Path Cache activity.
type Stats struct {
	Hits             uint64
	Misses           uint64
	Allocations      uint64
	AllocsAvoided    uint64 // misses not allocated (correctly predicted)
	Replacements     uint64
	DifficultSet     uint64 // Difficult-bit 0->1 transitions
	DifficultCleared uint64 // Difficult-bit 1->0 transitions
	Promotions       uint64
	Demotions        uint64
	// PromotionsRejected counts SetPromoted(id, false) calls: promotion
	// requests the Microthread Builder declined (busy, build failed, or
	// MicroRAM full). A rejection on a currently-promoted entry also
	// counts a demotion, since the Promoted bit transitions 1->0.
	PromotionsRejected uint64
}

type entry struct {
	id        path.ID
	valid     bool
	occ       uint32
	mis       uint32
	difficult bool
	promoted  bool
	lru       uint64 // last-touch tick
}

// Cache is the Path Cache.
type Cache struct {
	cfg  Config //dpbp:reset-skip configuration, fixed at construction
	sets [][]entry
	mask uint64 //dpbp:reset-skip geometry, fixed at construction
	tick uint64

	Stats Stats

	// Trace, when non-nil, receives allocate/replace/promote/demote
	// events (nil-hook pattern: the timing core sets it when tracing is
	// enabled; event timestamps come from the tracer's SetNow clock).
	// It is pure observation and never influences behaviour.
	Trace *obs.Tracer
}

// New returns a Path Cache configured by cfg. The set count is
// cfg.Entries/cfg.Ways rounded DOWN to a power of two (minimum one
// set) for mask indexing, so the effective capacity — Capacity() —
// never exceeds the configured entry count; a non-power-of-two request
// is served by the largest power-of-two geometry that fits. (Rounding
// up, as this constructor once did, silently granted a 6K-entry
// configuration 8K entries and biased capacity-sensitivity ablations.)
func New(cfg Config) *Cache {
	d := DefaultConfig()
	if cfg.Entries <= 0 {
		cfg.Entries = d.Entries
	}
	if cfg.Ways <= 0 {
		cfg.Ways = d.Ways
	}
	if cfg.TrainInterval <= 0 {
		cfg.TrainInterval = d.TrainInterval
	}
	nsets := cfg.Entries / cfg.Ways
	// Round the set count down to a power of two (min 1).
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	nsets = p
	sets := make([][]entry, nsets)
	backing := make([]entry, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, mask: uint64(nsets - 1)}
}

// Capacity returns the effective entry count: sets × ways after the
// power-of-two set rounding. It is at most the configured Entries.
func (c *Cache) Capacity() int { return len(c.sets) * c.cfg.Ways }

func (c *Cache) set(id path.ID) []entry {
	return c.sets[uint64(id)&c.mask]
}

// lookup returns the entry for id, or nil.
func (c *Cache) lookup(id path.ID) *entry {
	set := c.set(id)
	for i := range set {
		if set[i].valid && set[i].id == id {
			return &set[i]
		}
	}
	return nil
}

// Observe updates the Path Cache for a retired terminating branch on path
// id, with mispredicted reporting whether the hardware prediction was
// wrong. It returns any promotion/demotion event the update produced.
func (c *Cache) Observe(id path.ID, mispredicted bool) Event {
	c.tick++
	e := c.lookup(id)
	if e == nil {
		c.Stats.Misses++
		if !mispredicted && !c.cfg.AllocateAlways {
			// Allocate-on-mispredict: correctly predicted first
			// encounters are not worth tracking.
			c.Stats.AllocsAvoided++
			return Event{}
		}
		var replaced bool
		e, replaced = c.victim(id)
		c.Stats.Allocations++
		if replaced {
			c.Stats.Replacements++
			if c.Trace != nil {
				c.Trace.Emit(obs.KindPathReplace, uint64(id), 0, uint64(e.id))
			}
		} else if c.Trace != nil {
			c.Trace.Emit(obs.KindPathAlloc, uint64(id), 0, 0)
		}
		*e = entry{id: id, valid: true, lru: c.tick}
	} else {
		c.Stats.Hits++
		e.lru = c.tick
	}

	e.occ++
	if mispredicted {
		e.mis++
	}

	var ev Event
	if int(e.occ) >= c.cfg.TrainInterval {
		wasDifficult := e.difficult
		e.difficult = float64(e.mis)/float64(e.occ) > c.cfg.Threshold
		e.occ, e.mis = 0, 0
		if e.difficult && !wasDifficult {
			c.Stats.DifficultSet++
		}
		if !e.difficult && wasDifficult {
			c.Stats.DifficultCleared++
		}
		if !e.difficult && e.promoted {
			e.promoted = false
			c.Stats.Demotions++
			if c.Trace != nil {
				c.Trace.Emit(obs.KindPathDemote, uint64(id), 0, 0)
			}
			ev.Demote = true
		}
	}

	// Promotion logic runs on every update (Section 4.2.1): Difficult
	// set, Promoted clear -> request construction.
	if e.difficult && !e.promoted {
		ev.Promote = true
	}
	return ev
}

// SetPromoted records the builder's answer to a promotion request. Pass
// false if the builder could not satisfy the request, leaving the request
// to fire again on the next update. Every refusal counts in
// PromotionsRejected; a refusal that clears a currently-set Promoted bit
// additionally counts a demotion (the bit transitions 1->0), so
// builder-rejected promotions no longer vanish from the statistics.
func (c *Cache) SetPromoted(id path.ID, ok bool) {
	e := c.lookup(id)
	if e == nil {
		return
	}
	if ok {
		if !e.promoted {
			c.Stats.Promotions++
			if c.Trace != nil {
				c.Trace.Emit(obs.KindPathPromote, uint64(id), 0, 0)
			}
		}
	} else {
		c.Stats.PromotionsRejected++
		if c.Trace != nil {
			c.Trace.Emit(obs.KindPathPromoteRejected, uint64(id), 0, 0)
		}
		if e.promoted {
			c.Stats.Demotions++
			if c.Trace != nil {
				c.Trace.Emit(obs.KindPathDemote, uint64(id), 0, 0)
			}
		}
	}
	e.promoted = ok
}

// Difficult reports whether the path currently has its Difficult bit set.
func (c *Cache) Difficult(id path.ID) bool {
	e := c.lookup(id)
	return e != nil && e.difficult
}

// Promoted reports whether the path currently has its Promoted bit set.
func (c *Cache) Promoted(id path.ID) bool {
	e := c.lookup(id)
	return e != nil && e.promoted
}

// victim picks a replacement slot in id's set: an invalid slot if any,
// otherwise the LRU entry among non-difficult entries, falling back to
// the overall LRU entry when every way is difficult. PlainLRU disables
// the difficulty bias. The second return reports whether the slot holds
// a valid entry being replaced; victim itself is pure selection — the
// caller does the statistics and event accounting.
func (c *Cache) victim(id path.ID) (*entry, bool) {
	set := c.set(id)
	for i := range set {
		if !set[i].valid {
			return &set[i], false
		}
	}
	best := -1
	for i := range set {
		if !c.cfg.PlainLRU && set[i].difficult {
			continue
		}
		if best == -1 || set[i].lru < set[best].lru {
			best = i
		}
	}
	if best == -1 {
		for i := range set {
			if best == -1 || set[i].lru < set[best].lru {
				best = i
			}
		}
	}
	return &set[best], true
}

// Occupancy returns the number of valid entries currently resident. It
// can never exceed Capacity — the SMT conservation laws in
// internal/oracle check exactly that on shared caches.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// DifficultCount returns the number of currently difficult entries, for
// statistics.
func (c *Cache) DifficultCount() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].difficult {
				n++
			}
		}
	}
	return n
}

// AllocAvoidedFraction returns the fraction of misses whose allocation was
// skipped by allocate-on-mispredict (the paper reports ~45%).
func (c *Cache) AllocAvoidedFraction() float64 {
	if c.Stats.Misses == 0 {
		return 0
	}
	return float64(c.Stats.AllocsAvoided) / float64(c.Stats.Misses)
}
