// Package dpbp is a library-quality reproduction of "Difficult-Path
// Branch Prediction Using Subordinate Microthreads" (Chappell, Tseng,
// Yoaz, Patt — ISCA 2002).
//
// It bundles an execution-driven timing simulator of the paper's Table 3
// machine, the complete difficult-path microthreading mechanism (Path
// Cache, Microthread Builder with pruning, MicroRAM, Prediction Cache,
// SSMT spawning and aborts), twenty synthetic benchmarks standing in for
// SPECint95/SPECint2000, and an experiment harness that regenerates every
// table and figure in the paper's evaluation.
//
// Quick start:
//
//	w := dpbp.MustWorkload("gcc")
//	base := dpbp.Run(w, dpbp.BaselineConfig())
//	mech := dpbp.Run(w, dpbp.MachineConfig{})   // full mechanism, defaults
//	fmt.Printf("speedup %.2f%%\n", 100*(mech.Speedup(base)-1))
//
// Experiments (Tables 1-2, Figures 6-9) are exposed through the Table1,
// Table2, Figure6 ... Figure9 functions and the dpbp command.
package dpbp

import (
	"context"

	"dpbp/internal/bpred"
	"dpbp/internal/cpu"
	"dpbp/internal/pathprof"
	"dpbp/internal/program"
	"dpbp/internal/synth"
	"dpbp/internal/uthread"
)

// Routine is a constructed microthread routine; MachineConfig.OnBuild
// observes every routine the builder produces.
type Routine = uthread.Routine

// Workload is a runnable benchmark program.
type Workload struct {
	// Name is the benchmark name.
	Name string
	// Program is the generated executable image.
	Program *program.Program
	// Profile is the generator profile the workload came from.
	Profile synth.Profile
}

// Benchmarks returns the names of the twenty built-in benchmarks, in the
// paper's order (SPECint95 then SPECint2000).
func Benchmarks() []string { return synth.Names() }

// NewWorkload generates the named built-in benchmark.
func NewWorkload(name string) (*Workload, error) {
	p, err := synth.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return &Workload{Name: name, Program: synth.Generate(p), Profile: p}, nil
}

// MustWorkload is NewWorkload, panicking on unknown names.
func MustWorkload(name string) *Workload {
	w, err := NewWorkload(name)
	if err != nil {
		panic(err)
	}
	return w
}

// CustomProfile is a synthetic-benchmark generator profile; see
// DefaultProfile for a starting point and the field documentation on
// synth.Profile for meanings.
type CustomProfile = synth.Profile

// KernelMix builds the kernel-mix weights of a CustomProfile: weights for
// the data-dependent scan, path-correlated, loop-nest, switch,
// pointer-chase, call-tree, and interpreter-dispatch kernel families, in
// that order.
func KernelMix(scan, pathMix, loopNest, switches, chase, callTree, interp int) [synth.NumKernelKinds]int {
	return synth.Mix(scan, pathMix, loopNest, switches, chase, callTree, interp)
}

// DefaultProfile returns a template custom profile: a medium-size, hard
// workload. Adjust and pass to CustomWorkload.
func DefaultProfile(name string, seed int64) CustomProfile {
	return CustomProfile{
		Name:       name,
		Seed:       seed,
		Kernels:    12,
		Iterations: 1 << 20,
		Bias:       0.55,
		Footprint:  16 << 10,
		Mix:        KernelMix(3, 2, 2, 1, 1, 1, 1),
		LoopLen:    12,
		Pad:        2,
	}
}

// CustomWorkload generates a workload from a custom profile.
func CustomWorkload(p CustomProfile) *Workload {
	return &Workload{Name: p.Name, Program: synth.Generate(p), Profile: p}
}

// MachineConfig configures a timing run. The zero value is the Table 3
// baseline machine (ModeBaseline) with default sizes; use DefaultConfig
// for the paper's full mechanism or BaselineConfig for an explicit
// baseline.
type MachineConfig = cpu.Config

// Mode selects what the machine does about difficult paths.
type Mode = cpu.Mode

// Machine modes.
const (
	// ModeBaseline is the Table 3 machine with no microthreading.
	ModeBaseline = cpu.ModeBaseline
	// ModePerfectAll predicts every branch perfectly.
	ModePerfectAll = cpu.ModePerfectAll
	// ModePerfectPromoted perfectly predicts promoted difficult paths.
	ModePerfectPromoted = cpu.ModePerfectPromoted
	// ModeMicrothread runs the full microthread mechanism.
	ModeMicrothread = cpu.ModeMicrothread
)

// Result is the outcome of a timing run; see cpu.Result for the full
// statistics surface (IPC, mispredictions, spawn/abort counts, timeliness,
// builder and Prediction Cache statistics).
type Result = cpu.Result

// SMTConfig joins multiple primary contexts into one machine
// (MachineConfig.SMT). The zero value is the single-thread machine —
// bit-identical to a config without the field. Contexts names the
// co-scheduled workloads, FetchPolicy picks the arbiter, and the Shared*
// flags select which structures the contexts contend over.
type SMTConfig = cpu.SMTConfig

// WorkloadRef names one SMT primary context's benchmark.
type WorkloadRef = cpu.WorkloadRef

// FetchPolicy selects the SMT fetch arbiter.
type FetchPolicy = cpu.FetchPolicy

// SMT fetch arbitration policies.
const (
	// FetchRoundRobin grants fetch slots to contexts in rotation.
	FetchRoundRobin = cpu.FetchRoundRobin
	// FetchICount favors the context with the fewest in-flight fetches.
	FetchICount = cpu.FetchICount
)

// SMTResult is the outcome of an SMT timing run: one full Result per
// context plus the machine span and shared-structure snapshot.
type SMTResult = cpu.SMTResult

// RunSMT co-schedules the workloads as SMT primary contexts on one
// configured machine. cfg.SMT.Contexts must name one entry per workload
// (RunSMT fills them from the workload names when empty).
func RunSMT(ctx context.Context, ws []*Workload, cfg MachineConfig) (*SMTResult, error) {
	if len(cfg.SMT.Contexts) == 0 {
		for _, w := range ws {
			cfg.SMT.Contexts = append(cfg.SMT.Contexts, WorkloadRef{Bench: w.Name})
		}
	}
	progs := make([]*program.Program, len(ws))
	for i, w := range ws {
		progs[i] = w.Program
	}
	return cpu.RunSMT(ctx, progs, cfg)
}

// PredictorSpec selects and sizes the direction-predictor backend of a
// timing run (MachineConfig.BPred). The zero value is the paper's
// gshare/PAs hybrid; see PredictorBackends for the available names.
type PredictorSpec = bpred.Spec

// Registered predictor-backend names for PredictorSpec.Name.
const (
	// BackendHybrid is the paper's gshare/PAs hybrid (the default).
	BackendHybrid = bpred.BackendHybrid
	// BackendTAGE is a TAGE-style tagged geometric-history predictor.
	BackendTAGE = bpred.BackendTAGE
	// BackendH2P layers a hard-to-predict side predictor over the hybrid.
	BackendH2P = bpred.BackendH2P
)

// PredictorBackends returns the registered backend names, sorted.
func PredictorBackends() []string { return bpred.Backends() }

// DefaultConfig returns the paper's Figure 7 "pruning" machine: the full
// mechanism with n=10, T=.10, and pruning enabled.
func DefaultConfig() MachineConfig { return cpu.DefaultConfig() }

// BaselineConfig returns the Table 3 machine with no microthreading.
func BaselineConfig() MachineConfig {
	cfg := cpu.DefaultConfig()
	cfg.Mode = cpu.ModeBaseline
	return cfg
}

// Run executes a workload on the configured machine.
func Run(w *Workload, cfg MachineConfig) *Result {
	return cpu.Run(w.Program, cfg)
}

// PathProfile is the functional path-classification profile behind
// Tables 1 and 2.
type PathProfile = pathprof.Profile

// PathProfileConfig configures Profile.
type PathProfileConfig = pathprof.Config

// Profile runs the functional path profiler (no timing) over a workload.
func Profile(w *Workload, cfg PathProfileConfig) *PathProfile {
	return pathprof.Run(w.Program, cfg)
}
