package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSummarisesRoutines(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "comp", 60_000, 2, true); err != nil {
		t.Fatalf("run(comp) = %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"routines built over",
		"size:", "dep chain:", "live-ins:",
		"build terminations:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunShowZeroPrintsOnlySummary(t *testing.T) {
	var full, summary bytes.Buffer
	if err := run(&full, "comp", 60_000, 3, true); err != nil {
		t.Fatal(err)
	}
	if err := run(&summary, "comp", 60_000, 0, true); err != nil {
		t.Fatal(err)
	}
	if summary.Len() >= full.Len() {
		t.Errorf("-show 0 output (%d bytes) not shorter than -show 3 (%d bytes)",
			summary.Len(), full.Len())
	}
}

func TestRunPruningOff(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "comp", 60_000, 0, false); err != nil {
		t.Fatalf("run(pruning=false) = %v", err)
	}
	if !strings.Contains(b.String(), "pruning=false") {
		t.Errorf("output does not record pruning flag:\n%s", b.String())
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run(&bytes.Buffer{}, "nope", 1_000, 0, true); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
