// Command routines inspects the microthread routines the builder
// constructs for a benchmark: disassembled bodies with spawn metadata, and
// a summary of size, dependence-chain, live-in, and pruning distributions.
//
// Usage:
//
//	routines -bench gcc [-insts 300000] [-show 5] [-pruning=false]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dpbp"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	insts := flag.Uint64("insts", 300_000, "instruction budget")
	show := flag.Int("show", 5, "number of routines to print in full")
	pruning := flag.Bool("pruning", true, "enable pruning")
	flag.Parse()

	if err := run(os.Stdout, *bench, *insts, *show, *pruning); err != nil {
		fmt.Fprintln(os.Stderr, "routines:", err)
		os.Exit(1)
	}
}

// run builds and summarises one benchmark's routines to w. It is the
// whole CLI behind flag parsing, so tests can drive it directly.
func run(w io.Writer, bench string, insts uint64, show int, pruning bool) error {
	wl, err := dpbp.NewWorkload(bench)
	if err != nil {
		return err
	}

	var routines []*dpbp.Routine
	cfg := dpbp.DefaultConfig()
	cfg.MaxInsts = insts
	cfg.Pruning = pruning
	cfg.OnBuild = func(r *dpbp.Routine) { routines = append(routines, r) }
	res := dpbp.Run(wl, cfg)

	fmt.Fprintf(w, "%s: %d routines built over %d instructions (pruning=%v)\n\n",
		wl.Name, len(routines), res.Insts, pruning)
	if len(routines) == 0 {
		return nil
	}

	for i, r := range routines {
		if i >= show {
			break
		}
		fmt.Fprint(w, r)
		fmt.Fprintln(w)
	}

	// Distributions.
	sizes := make([]int, len(routines))
	chains := make([]int, len(routines))
	var liveIns, pruned, memSpec int
	for i, r := range routines {
		sizes[i] = r.Size()
		chains[i] = r.DepChain
		liveIns += len(r.LiveIns)
		pruned += r.PrunedSubtrees
		if r.MemDepSpeculative {
			memSpec++
		}
	}
	sort.Ints(sizes)
	sort.Ints(chains)
	pctile := func(xs []int, p int) int { return xs[(len(xs)-1)*p/100] }
	fmt.Fprintf(w, "size:        min=%d p50=%d p90=%d max=%d\n",
		sizes[0], pctile(sizes, 50), pctile(sizes, 90), sizes[len(sizes)-1])
	fmt.Fprintf(w, "dep chain:   min=%d p50=%d p90=%d max=%d\n",
		chains[0], pctile(chains, 50), pctile(chains, 90), chains[len(chains)-1])
	fmt.Fprintf(w, "live-ins:    %.2f average per routine\n", float64(liveIns)/float64(len(routines)))
	fmt.Fprintf(w, "pruned subtrees: %d total across %d routines\n", pruned, len(routines))
	fmt.Fprintf(w, "memory-speculative routines: %d of %d\n", memSpec, len(routines))
	fmt.Fprintf(w, "\nbuild terminations: scope=%d memdep=%d mcb-full=%d\n",
		res.Build.TerminatedScope, res.Build.TerminatedMemDep, res.Build.TerminatedMCBFull)
	return nil
}
