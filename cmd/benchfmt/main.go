// Command benchfmt reduces the repo's committed benchmark baselines —
// go-test JSON event files like BENCH_seed.json, produced by `make
// bench-json` — into one side-by-side comparison table.
//
// Usage:
//
//	benchfmt BENCH_seed.json BENCH_pr3.json BENCH_pr8.json
//
// Each argument is one column; rows are benchmarks. The first file is
// the reference: every later column shows its ns/op and allocs/op with
// the speedup (reference ns/op ÷ column ns/op) alongside, so a
// perf-optimisation PR's trajectory reads left to right. Benchmarks
// missing from a file render as "-"; go test's event stream splits a
// benchmark's result line across output events, so events are
// concatenated per test before parsing.
//
// `make bench-diff` runs it over the committed baselines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record benchfmt consumes.
type event struct {
	Action string
	Test   string
	Output string
}

// result is one benchmark's measurements in one file.
type result struct {
	nsOp     float64
	allocsOp float64
	hasMem   bool
}

var (
	nsRe     = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?) ns/op`)
	allocsRe = regexp.MustCompile(`([0-9]+) allocs/op`)
)

// parseFile extracts benchmark results from one go-test JSON event file.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to report

	// Concatenate output per test first: result lines arrive split
	// across events.
	outputs := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if ev.Action != "output" || !strings.HasPrefix(ev.Test, "Benchmark") {
			continue
		}
		b := outputs[ev.Test]
		if b == nil {
			b = &strings.Builder{}
			outputs[ev.Test] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}

	results := make(map[string]result)
	for test, b := range outputs {
		out := b.String()
		m := nsRe.FindStringSubmatch(out)
		if m == nil {
			continue // ran but emitted no measurement (skipped, failed)
		}
		r := result{}
		r.nsOp, _ = strconv.ParseFloat(m[1], 64)
		if am := allocsRe.FindStringSubmatch(out); am != nil {
			r.allocsOp, _ = strconv.ParseFloat(am[1], 64)
			r.hasMem = true
		}
		results[strings.TrimPrefix(test, "Benchmark")] = r
	}
	return results, nil
}

// fmtNs renders a ns/op value at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.0fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtAllocs renders an allocs/op count compactly.
func fmtAllocs(n float64) string {
	if n >= 1e3 {
		return fmt.Sprintf("%.1fk allocs", n/1e3)
	}
	return fmt.Sprintf("%.0f allocs", n)
}

func run(paths []string) error {
	type column struct {
		name    string
		results map[string]result
	}
	var cols []column
	for _, p := range paths {
		rs, err := parseFile(p)
		if err != nil {
			return err
		}
		cols = append(cols, column{name: p, results: rs})
	}

	// Row set: every benchmark seen anywhere, sorted.
	names := make(map[string]bool)
	for _, c := range cols {
		for n := range c.results {
			names[n] = true
		}
	}
	rows := make([]string, 0, len(names))
	for n := range names {
		rows = append(rows, n)
	}
	sort.Strings(rows)

	w := bufio.NewWriter(os.Stdout)

	cells := make([][]string, len(rows)+1)
	cells[0] = append([]string{"benchmark"}, paths...)
	ref := cols[0].results
	for i, name := range rows {
		row := []string{name}
		for ci, c := range cols {
			r, ok := c.results[name]
			if !ok {
				row = append(row, "-")
				continue
			}
			cell := fmtNs(r.nsOp)
			if ci > 0 {
				if base, ok := ref[name]; ok && r.nsOp > 0 {
					cell += fmt.Sprintf(" (%.2fx)", base.nsOp/r.nsOp)
				}
			}
			if r.hasMem {
				cell += " " + fmtAllocs(r.allocsOp)
			}
			row = append(row, cell)
		}
		cells[i+1] = row
	}

	// Column-aligned plain text.
	widths := make([]int, len(cells[0]))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchfmt BENCH_a.json [BENCH_b.json ...]")
		os.Exit(2)
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}
