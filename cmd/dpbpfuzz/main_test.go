package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns options sized for tests: few trials, small programs,
// repros into a temp dir.
func tiny(t *testing.T) options {
	t.Helper()
	return options{
		trials: 4, seed: 1, units: 3, insts: 3_000, jobs: 2,
		out: t.TempDir(),
	}
}

func TestRunCleanSweep(t *testing.T) {
	var buf strings.Builder
	o := tiny(t)
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatalf("clean sweep failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "4 trials, 0 failures") {
		t.Errorf("missing summary line:\n%s", buf.String())
	}
	entries, err := os.ReadDir(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("clean sweep wrote repros: %v", entries)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	o := tiny(t)
	o.units = 0
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("zero units accepted")
	}
	o = tiny(t)
	o.insts = 0
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("zero insts accepted")
	}
}

// TestRunSelftest proves the CLI's end-to-end pipeline: the injected
// fault is detected, shrunk, written as a repro, and the written repro
// still fails under the same fault.
func TestRunSelftest(t *testing.T) {
	var buf strings.Builder
	o := tiny(t)
	o.units = 6
	o.insts = 12_000
	o.selftest = true
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "fault detected") || !strings.Contains(out, "repro ") {
		t.Errorf("selftest output incomplete:\n%s", out)
	}
	jsons, _ := filepath.Glob(filepath.Join(o.out, "*.json"))
	asms, _ := filepath.Glob(filepath.Join(o.out, "*.asm"))
	if len(jsons) != 1 || len(asms) != 1 {
		t.Fatalf("expected one .json and one .asm repro, got %v / %v", jsons, asms)
	}

	// Replaying the repro with the fault still injected must fail ...
	o.repro = jsons[0]
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("faulted replay of the repro passed")
	}
	// ... and without the fault (the artificial corruption gone, as
	// after a real fix) it must pass and say so.
	o.selftest = false
	buf.Reset()
	if err := run(context.Background(), &buf, o); err != nil {
		t.Errorf("clean replay failed: %v", err)
	}
	if !strings.Contains(buf.String(), "no longer fails") {
		t.Errorf("clean replay output:\n%s", buf.String())
	}
}

func TestReplayMissingFile(t *testing.T) {
	o := tiny(t)
	o.repro = filepath.Join(o.out, "missing.json")
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("missing repro file accepted")
	}
}
