// Command dpbpfuzz drives the differential oracle over seeded random
// programs: each trial generates a program from (seed+i, units), runs it
// through the functional emulator and every timing-core ablation, and
// diffs the retired architectural stream, the final state, and the
// statistics algebra (see internal/oracle).
//
// Usage:
//
//	dpbpfuzz [-n N] [-seed S] [-units U] [-insts I] [-j J] [-out DIR]
//	dpbpfuzz -repro FILE [-selftest]
//	dpbpfuzz -selftest
//
// Flags:
//
//	-n N        number of trials (default 256)
//	-seed S     base seed; trial i uses seed S+i (default 1)
//	-units U    code units per generated program (default 6)
//	-insts I    per-run primary-instruction budget (default 12000)
//	-j J        parallel trials (0 = GOMAXPROCS)
//	-out DIR    directory for shrunk repros (default testdata/repros)
//	-repro FILE replay one repro file instead of running trials
//	-selftest   inject an artificial stream fault, then require the
//	            harness to detect it, shrink it, and write a repro
//
// A failing trial is shrunk to a minimal failing unit subset and written
// to -out as <spec>.json (the regeneration recipe) plus <spec>.asm (the
// disassembled program); the exit status is nonzero. -selftest proves
// the whole pipeline end to end by corrupting one branch record in the
// "micro" ablation and demanding a repro come out the other side;
// combined with -repro it replays a repro under the same injected fault.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dpbp/internal/oracle"
	"dpbp/internal/sched"
	"dpbp/internal/synth"
)

func main() {
	var o options
	flag.IntVar(&o.trials, "n", 256, "number of trials")
	flag.Int64Var(&o.seed, "seed", 1, "base seed; trial i uses seed+i")
	flag.IntVar(&o.units, "units", 6, "code units per generated program")
	flag.Uint64Var(&o.insts, "insts", 12_000, "per-run primary-instruction budget")
	flag.IntVar(&o.jobs, "j", 0, "parallel trials (0 = GOMAXPROCS)")
	flag.StringVar(&o.out, "out", "testdata/repros", "directory for shrunk repros")
	flag.StringVar(&o.repro, "repro", "", "replay one repro file instead of running trials")
	flag.BoolVar(&o.selftest, "selftest", false, "inject a fault and require detection, shrinking, and a repro")
	flag.Parse()

	if err := run(context.Background(), os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "dpbpfuzz:", err)
		os.Exit(1)
	}
}

// options is the parsed command line; run takes it whole so tests can
// drive the CLI without a process boundary.
type options struct {
	trials   int
	seed     int64
	units    int
	insts    uint64
	jobs     int
	out      string
	repro    string
	selftest bool
}

// fault returns the injected corruption for selftest mode, nil otherwise.
// The flipped record sits halfway through the instruction budget, which
// every generated program reaches (their main loops are effectively
// unbounded against these budgets).
func (o options) fault() *oracle.Fault {
	if !o.selftest {
		return nil
	}
	return &oracle.Fault{Config: "micro", Seq: o.insts / 2}
}

// run executes the CLI behind flag parsing: replay, selftest, or a trial
// sweep. Any returned error means a nonzero exit.
func run(ctx context.Context, w io.Writer, o options) error {
	if o.units <= 0 {
		return fmt.Errorf("-units must be positive, got %d", o.units)
	}
	if o.insts == 0 {
		return fmt.Errorf("-insts must be positive")
	}
	vopts := oracle.Options{MaxInsts: o.insts, Trace: true, Fault: o.fault()}
	if o.repro != "" {
		return replay(w, o.repro, vopts)
	}
	if o.selftest {
		return selftest(w, o, vopts)
	}
	return sweep(ctx, w, o, vopts)
}

// sweep runs o.trials independent seeded trials with bounded
// parallelism, shrinks and persists every failure, and reports failures
// in trial order (sched.Run's error slice is index-ordered, so the
// output is deterministic regardless of completion order).
func sweep(ctx context.Context, w io.Writer, o options, vopts oracle.Options) error {
	specs := make([]synth.RandSpec, o.trials)
	errs := sched.Run(ctx, o.trials, sched.Options{Parallelism: o.jobs},
		func(ctx context.Context, i int) error {
			specs[i] = synth.RandSpec{Seed: o.seed + int64(i), Units: o.units}
			return oracle.Verify(synth.RandomProgram(specs[i]), vopts)
		})

	failures := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failures++
		fmt.Fprintf(w, "FAIL %v: %v\n", specs[i], err)
		if path, rerr := shrinkAndWrite(o.out, specs[i], err, vopts); rerr != nil {
			fmt.Fprintf(w, "  repro not written: %v\n", rerr)
		} else if path != "" {
			fmt.Fprintf(w, "  repro: %s\n", path)
		}
	}
	fmt.Fprintf(w, "dpbpfuzz: %d trials, %d failures\n", o.trials, failures)
	if failures > 0 {
		return fmt.Errorf("%d of %d trials failed", failures, o.trials)
	}
	return nil
}

// shrinkAndWrite minimises a failing spec and persists it. A failure
// that does not reproduce deterministically (e.g. a per-run timeout from
// a cancelled sweep) is reported but yields no repro file.
func shrinkAndWrite(dir string, spec synth.RandSpec, verr error, vopts oracle.Options) (string, error) {
	failing := func(s synth.RandSpec) bool {
		return oracle.Verify(synth.RandomProgram(s), vopts) != nil
	}
	if !failing(spec) {
		return "", nil
	}
	shrunk := oracle.Shrink(spec, failing)
	return oracle.WriteRepro(dir, oracle.Repro{
		Seed: shrunk.Seed, Units: shrunk.Units, Omit: shrunk.Omit,
		MaxInsts: vopts.MaxInsts, Error: verr.Error(),
	})
}

// replay re-runs the verification a repro file describes. The repro's
// recorded instruction budget overrides -insts so the replay matches the
// original trial.
func replay(w io.Writer, path string, vopts oracle.Options) error {
	r, err := oracle.LoadRepro(path)
	if err != nil {
		return err
	}
	vopts.MaxInsts = r.MaxInsts
	spec := r.Spec()
	if err := oracle.Verify(synth.RandomProgram(spec), vopts); err != nil {
		fmt.Fprintf(w, "FAIL %v: %v\n", spec, err)
		return fmt.Errorf("repro %s still fails", path)
	}
	fmt.Fprintf(w, "PASS %v: repro no longer fails\n", spec)
	return nil
}

// selftest proves the detect-shrink-persist pipeline end to end: with an
// artificial stream corruption injected into the "micro" ablation, the
// base spec must fail verification, shrink to no more units than it
// started with, and round-trip through a repro file that still fails.
func selftest(w io.Writer, o options, vopts oracle.Options) error {
	spec := synth.RandSpec{Seed: o.seed, Units: o.units}
	verr := oracle.Verify(synth.RandomProgram(spec), vopts)
	if verr == nil {
		return fmt.Errorf("selftest: injected fault at seq %d not detected", vopts.Fault.Seq)
	}
	fmt.Fprintf(w, "selftest: fault detected: %v\n", verr)

	path, err := shrinkAndWrite(o.out, spec, verr, vopts)
	if err != nil {
		return fmt.Errorf("selftest: %w", err)
	}
	if path == "" {
		return fmt.Errorf("selftest: failure did not reproduce for shrinking")
	}
	r, err := oracle.LoadRepro(path)
	if err != nil {
		return fmt.Errorf("selftest: %w", err)
	}
	replayOpts := vopts
	replayOpts.MaxInsts = r.MaxInsts
	if oracle.Verify(synth.RandomProgram(r.Spec()), replayOpts) == nil {
		return fmt.Errorf("selftest: shrunk repro %s no longer fails", path)
	}
	fmt.Fprintf(w, "selftest: shrunk %v -> %v, repro %s\n", spec, r.Spec(), path)
	return nil
}
