// Command dpbp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpbp -exp table1|table2|fig6|fig7|fig8|fig9|perfect|guided|ablations|shootout|smt|all [flags]
//
// Flags:
//
//	-bench comp,gcc,...   benchmarks to run (default: all twenty)
//	-bpred NAME           direction-predictor backend (hybrid, h2p, tage; default hybrid)
//	-smt SPEC             SMT mix override for -exp smt (bench+bench[:policy][:flags])
//	-format text|json|csv output format (default text)
//	-insts N              timing-run instruction budget (0 = library default)
//	-profinsts N          profiling-run instruction budget (0 = library default)
//	-j N                  parallel benchmark runs (0 = GOMAXPROCS; overrides -par)
//	-par N                deprecated alias for -j
//	-timeout D            whole-invocation time budget (e.g. 90s; 0 = none)
//	-nocache              recompute every run instead of memoizing
//	-noreplay             re-execute programs live instead of replaying the tape
//	-trace FILE           write a Chrome trace-event JSON of every timing run
//	-metrics              append a metrics section (unified counters/histograms)
//	-cpuprofile FILE      write a CPU profile of the whole invocation
//	-memprofile FILE      write a heap profile at exit
//
// Instruction budgets left at zero use the library defaults, so the
// numbers live in one place (internal/exp). When -timeout expires the
// sweeps drain and emit partial results: completed benchmarks keep their
// rows, and every missing one is listed in an explicit error section
// (text marks the output PARTIAL RESULT; JSON and CSV carry the errors
// structurally).
//
// Runs are memoized through a content-addressed cache, so experiments
// sharing configurations (the figures re-request the same baselines;
// Tables 1 and 2 share one profile) compute each unique run exactly
// once. Results are bit-identical either way; -nocache exists for
// timing comparisons.
//
// Cached sweeps also record each benchmark's retirement stream once and
// replay it into every timing configuration (internal/replay), sharing
// one branch-predictor pass per backend across runs. -noreplay forces
// live functional re-execution instead; results are bit-identical
// either way, and the flag exists for timing comparisons and as an
// escape hatch.
//
// -trace attaches a lifecycle tracer to every timing run and writes one
// Chrome trace-event JSON document (loadable in Perfetto or
// chrome://tracing) with timestamps in fetch cycles; traced runs bypass
// the cache so the events are always replayed. -metrics appends a
// "metrics" section — the scattered statistics structs unified into one
// named counter/histogram registry — rendered in whatever -format says.
//
// -bpred swaps the direction predictor every timing run uses (the
// registry in internal/bpred; default "hybrid", the paper's gshare/PAs
// machine). -exp shootout instead varies the backend itself, pitting
// every registered backend and the H2P-gated microthread variant against
// the hybrid baseline; it ignores -bpred's name but is not part of
// "all" (its runs would double the budget without reproducing a paper
// figure).
//
// -exp smt is the SMT interference study: benchmark pairs co-scheduled
// as primary contexts on one machine, each mix run with everything
// private and with the Path Cache shared, reporting per-context IPC and
// difficult-path coverage against the solo run plus the spawn-denial
// rate against the machine-wide microcontext budget. -smt overrides the
// canned mix list with one spec — benchmarks joined by "+", then an
// optional fetch policy (rr, icount) and shared-structure flags
// (pathcache, pcache, uram, pred, all), colon-separated:
// "gcc+ijpeg:icount:pathcache,uram". Like shootout, smt is not part of
// "all". The same spec vocabulary drives JSON sweep configs and run
// cache keys, so a CLI run and a dpbpd submission of one spec memoize
// identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dpbp"
	"dpbp/internal/exp"
	"dpbp/internal/report"
	"dpbp/internal/results"
)

func main() {
	expName := flag.String("exp", "all", "experiment: table1, table2, fig6, fig7, fig8, fig9, perfect, guided, ablations, shootout, smt, all")
	bench := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	bpredName := flag.String("bpred", "", "direction-predictor backend: "+strings.Join(dpbp.PredictorBackends(), ", ")+" (default hybrid)")
	smtSpec := flag.String("smt", "", "SMT mix override for -exp smt: bench+bench[:policy][:flags]")
	format := flag.String("format", "", "output format: text, json, csv (default text)")
	insts := flag.Uint64("insts", 0, "timing-run instruction budget (0 = library default)")
	profInsts := flag.Uint64("profinsts", 0, "profiling-run instruction budget (0 = library default)")
	jobs := flag.Int("j", 0, "parallel benchmark runs (0 = GOMAXPROCS; overrides -par)")
	par := flag.Int("par", 0, "deprecated alias for -j")
	timeout := flag.Duration("timeout", 0, "whole-invocation time budget; expired sweeps emit partial results (0 = none)")
	noCache := flag.Bool("nocache", false, "recompute every run instead of memoizing shared ones")
	noReplay := flag.Bool("noreplay", false, "re-execute programs live instead of replaying the shared retirement tape")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of every timing run to this file")
	metrics := flag.Bool("metrics", false, "append a metrics section (unified counters and histograms)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	os.Exit(mainExit(*expName, *bench, *bpredName, *smtSpec, *format, *insts, *profInsts, *jobs, *par,
		*timeout, *noCache, *noReplay, obsOpts{traceFile: *traceFile, metrics: *metrics},
		*cpuProfile, *memProfile))
}

// obsOpts bundles the observability flags.
type obsOpts struct {
	// traceFile, when non-empty, is where the Chrome trace-event JSON of
	// every timing run is written.
	traceFile string
	// metrics appends a "metrics" section to the rendered output.
	metrics bool
}

// enabled reports whether any observability output was requested.
func (o obsOpts) enabled() bool { return o.traceFile != "" || o.metrics }

// mainExit is main minus os.Exit, so profile writers run via defer before
// the process terminates.
func mainExit(expName, bench, bpredName, smtSpec, format string, insts, profInsts uint64, jobs, par int,
	timeout time.Duration, noCache, noReplay bool, oo obsOpts, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpbp:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dpbp:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpbp:", err)
			}
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dpbp:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dpbp:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpbp:", err)
			}
		}()
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	jobs, err := resolveJobs(os.Stderr, jobs, par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbp:", err)
		return 1
	}
	if err := checkBackend(bpredName); err != nil {
		fmt.Fprintln(os.Stderr, "dpbp:", err)
		return 1
	}
	smt, err := exp.ParseSMTSpec(smtSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbp:", err)
		return 1
	}
	opts := dpbp.ExperimentOptions{
		Benchmarks:   parseBenchList(bench),
		TimingInsts:  insts,
		ProfileInsts: profInsts,
		Parallelism:  jobs,
		SMT:          smt,
	}
	opts.BPred.Name = bpredName
	opts.NoReplay = noReplay
	if !noCache {
		opts.Cache = dpbp.NewRunCache()
	}

	if err := runObs(ctx, os.Stdout, expName, format, opts, oo); err != nil {
		fmt.Fprintln(os.Stderr, "dpbp:", err)
		return 1
	}
	return 0
}

// resolveJobs reconciles -j with its deprecated alias -par: any -par use
// draws a deprecation warning, and conflicting nonzero values are an
// error rather than silently preferring one of them.
func resolveJobs(warnTo io.Writer, jobs, par int) (int, error) {
	if par == 0 {
		return jobs, nil
	}
	fmt.Fprintln(warnTo, "dpbp: warning: -par is deprecated; use -j")
	if jobs != 0 && jobs != par {
		return 0, fmt.Errorf("conflicting -j %d and -par %d; drop the deprecated -par", jobs, par)
	}
	return par, nil
}

// parseBenchList splits a -bench argument; empty means all benchmarks.
func parseBenchList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run executes the named experiment(s) and renders them to w. It is the
// whole CLI behind flag parsing, so tests can drive it directly.
func run(ctx context.Context, w io.Writer, name, format string, opts dpbp.ExperimentOptions) error {
	return runObs(ctx, w, name, format, opts, obsOpts{})
}

// runObs is run plus the observability outputs: with tracing or metrics
// requested a collector is attached to every timing run, a metrics
// section is appended after the experiment sections, and the collected
// trace is written as its own file (the rendered output is unchanged by
// -trace alone).
func runObs(ctx context.Context, w io.Writer, name, format string, opts dpbp.ExperimentOptions, oo obsOpts) error {
	if err := checkFormat(format); err != nil {
		return err
	}
	if oo.enabled() && opts.Trace == nil {
		opts.Trace = dpbp.NewTraceCollector()
	}
	sections, err := exp.Collect(ctx, name, opts)
	if err != nil {
		return err
	}
	if oo.metrics {
		sections = append(sections, results.Section{Key: "metrics", Val: buildMetrics(sections, opts)})
	}
	if err := report.RenderSections(w, format, sections); err != nil {
		return err
	}
	if oo.traceFile != "" {
		f, err := os.Create(oo.traceFile)
		if err != nil {
			return err
		}
		if err := dpbp.WriteChromeTrace(f, opts.Trace); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		return f.Close()
	}
	return nil
}

// buildMetrics unifies the experiment's statistics into one registry:
// per-variant sums of the timing-run statistics (from the Figure 7 run
// sets, which carry complete cpu.Results), run-cache traffic, and —
// when tracing — the per-kind event counts and delivery-slack
// histograms, whose totals reconcile exactly with the summed statistics.
func buildMetrics(sections []results.Section, opts dpbp.ExperimentOptions) *dpbp.MetricsRegistry {
	reg := dpbp.NewMetricsRegistry()
	addRun := func(prefix string, r *dpbp.Result) {
		if r == nil {
			return
		}
		reg.Add(prefix+".insts", r.Insts)
		reg.Add(prefix+".cycles", r.Cycles)
		reg.Add(prefix+".branches", r.Branches)
		reg.Add(prefix+".hw_mispredicts", r.HWMispredicts)
		reg.Add(prefix+".mispredicts", r.Mispredicts)
		reg.AddStruct(prefix+".micro", r.Micro)
		reg.AddStruct(prefix+".pathcache", r.PathCache)
		reg.AddStruct(prefix+".pcache", r.PCache)
		reg.AddStruct(prefix+".build", r.Build)
		reg.AddStruct(prefix+".pred", r.PredStats)
		reg.AddStruct(prefix+".backend", r.Backend)
	}
	for _, s := range sections {
		if f7, ok := s.Val.(*dpbp.Figure7Result); ok {
			for _, r := range f7.Runs {
				addRun("fig7.base", r.Base)
				addRun("fig7.no_prune", r.NoPrune)
				addRun("fig7.prune", r.Prune)
				addRun("fig7.overhead", r.Overhead)
			}
		}
	}
	if opts.Cache != nil {
		reg.AddStruct("runcache", opts.Cache.Stats())
	}
	if opts.Trace != nil {
		opts.Trace.AddTo(reg)
	}
	return reg
}

// checkBackend rejects unknown -bpred names before any experiment runs;
// empty means the default (hybrid).
func checkBackend(name string) error {
	if name == "" {
		return nil
	}
	for _, b := range dpbp.PredictorBackends() {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown predictor backend %q (have %v)", name, dpbp.PredictorBackends())
}

// checkFormat rejects unknown formats before any experiment runs.
func checkFormat(format string) error {
	for _, f := range append([]string{""}, report.Formats()...) {
		if format == f {
			return nil
		}
	}
	return fmt.Errorf("unknown format %q (have %v)", format, report.Formats())
}
