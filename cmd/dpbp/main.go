// Command dpbp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpbp -exp table1|table2|fig6|fig7|fig8|fig9|perfect|all [flags]
//
// Flags:
//
//	-bench comp,gcc,...   benchmarks to run (default: all twenty)
//	-insts N              timing-run instruction budget (default 400000)
//	-profinsts N          profiling-run instruction budget (default 1000000)
//	-par N                parallel benchmark runs (default NumCPU)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpbp"
)

func main() {
	expName := flag.String("exp", "all", "experiment: table1, table2, fig6, fig7, fig8, fig9, perfect, guided, ablations, all")
	bench := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	insts := flag.Uint64("insts", 400_000, "timing-run instruction budget")
	profInsts := flag.Uint64("profinsts", 1_000_000, "profiling-run instruction budget")
	par := flag.Int("par", 0, "parallel benchmark runs (default NumCPU)")
	flag.Parse()

	opts := dpbp.ExperimentOptions{
		TimingInsts:  *insts,
		ProfileInsts: *profInsts,
		Parallelism:  *par,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	if err := run(*expName, opts); err != nil {
		fmt.Fprintln(os.Stderr, "dpbp:", err)
		os.Exit(1)
	}
}

func run(name string, opts dpbp.ExperimentOptions) error {
	show := func(s fmt.Stringer, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(s.String())
		return nil
	}
	switch name {
	case "table1":
		return show(result(dpbp.Table1(opts)))
	case "table2":
		return show(result(dpbp.Table2(opts)))
	case "fig6":
		return show(result(dpbp.Figure6(opts)))
	case "fig7":
		return show(result(dpbp.Figure7(opts)))
	case "fig8":
		return show(result(dpbp.Figure8(opts)))
	case "fig9":
		return show(result(dpbp.Figure9(opts)))
	case "perfect":
		return show(result(dpbp.Perfect(opts)))
	case "guided":
		return show(result(dpbp.ProfileGuided(opts)))
	case "ablations":
		return show(result(dpbp.Ablations(opts)))
	case "all":
		if err := show(result(dpbp.Table1(opts))); err != nil {
			return err
		}
		if err := show(result(dpbp.Table2(opts))); err != nil {
			return err
		}
		if err := show(result(dpbp.Perfect(opts))); err != nil {
			return err
		}
		if err := show(result(dpbp.Figure6(opts))); err != nil {
			return err
		}
		runs, err := dpbp.RunFigure7Set(opts)
		if err != nil {
			return err
		}
		fmt.Println((&dpbp.Figure7Result{Runs: runs}).String())
		fmt.Println(dpbp.Figure8FromRuns(runs).String())
		fmt.Println(dpbp.Figure9FromRuns(runs).String())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// result adapts (T, error) pairs to (fmt.Stringer, error).
func result[T fmt.Stringer](v T, err error) (fmt.Stringer, error) { return v, err }
