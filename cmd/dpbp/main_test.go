package main

import (
	"strings"
	"testing"

	"dpbp"
)

func tiny() dpbp.ExperimentOptions {
	return dpbp.ExperimentOptions{
		Benchmarks:   []string{"comp"},
		TimingInsts:  60_000,
		ProfileInsts: 60_000,
	}
}

func TestRunDispatch(t *testing.T) {
	for _, name := range []string{"table1", "table2", "fig6", "fig7", "fig8", "fig9", "perfect", "guided"} {
		if err := run(name, tiny()); err != nil {
			t.Errorf("run(%q) = %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run("bogus", tiny())
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("run(bogus) = %v", err)
	}
}

func TestRunBadBenchmark(t *testing.T) {
	opts := tiny()
	opts.Benchmarks = []string{"nope"}
	if err := run("table1", opts); err == nil {
		t.Error("bad benchmark accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if err := run("all", tiny()); err != nil {
		t.Errorf("run(all) = %v", err)
	}
}
