package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"dpbp"
)

func tiny() dpbp.ExperimentOptions {
	return dpbp.ExperimentOptions{
		Benchmarks:   []string{"comp"},
		TimingInsts:  60_000,
		ProfileInsts: 60_000,
	}
}

func TestRunDispatch(t *testing.T) {
	for _, name := range []string{"table1", "table2", "fig6", "fig7", "fig8", "fig9", "perfect", "guided"} {
		var b bytes.Buffer
		if err := run(context.Background(), &b, name, "", tiny()); err != nil {
			t.Errorf("run(%q) = %v", name, err)
		}
		if b.Len() == 0 {
			t.Errorf("run(%q) wrote nothing", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(context.Background(), &bytes.Buffer{}, "bogus", "", tiny())
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("run(bogus) = %v", err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	err := run(context.Background(), &bytes.Buffer{}, "table1", "yaml", tiny())
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("run(format=yaml) = %v", err)
	}
}

func TestRunBadBenchmark(t *testing.T) {
	opts := tiny()
	opts.Benchmarks = []string{"nope"}
	if err := run(context.Background(), &bytes.Buffer{}, "table1", "", opts); err == nil {
		t.Error("bad benchmark accepted")
	}
}

func TestParseBenchList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"gcc", []string{"gcc"}},
		{"gcc,li,mcf_2k", []string{"gcc", "li", "mcf_2k"}},
		{" gcc , li ", []string{"gcc", "li"}},
		{"gcc,,li", []string{"gcc", "li"}},
	}
	for _, c := range cases {
		if got := parseBenchList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseBenchList(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestRunJSONFormat(t *testing.T) {
	var b bytes.Buffer
	if err := run(context.Background(), &b, "table1", "json", tiny()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []struct {
			Bench string `json:"bench"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Rows) != 1 || doc.Rows[0].Bench != "comp" {
		t.Errorf("unexpected JSON document: %s", b.String())
	}
}

func TestRunCSVFormat(t *testing.T) {
	var b bytes.Buffer
	if err := run(context.Background(), &b, "table1", "csv", tiny()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "bench,") {
		t.Errorf("unexpected CSV:\n%s", b.String())
	}
}

// TestRunAllJSON is the acceptance check for machine-readable full runs:
// -exp all -format json must emit one valid JSON document containing
// every section.
func TestRunAllJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var b bytes.Buffer
	if err := run(context.Background(), &b, "all", "json", tiny()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"table1", "table2", "perfect", "figure6", "figure7", "figure8", "figure9", "order"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("all-JSON document missing %q", key)
		}
	}
}

func TestRunAllText(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var b bytes.Buffer
	if err := run(context.Background(), &b, "all", "", tiny()); err != nil {
		t.Errorf("run(all) = %v", err)
	}
	for _, want := range []string{"Table 1", "Table 2", "Section 1", "Figure 6", "Figure 7", "Figure 8", "Figure 9"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("all-text output missing %q", want)
		}
	}
}

func TestRunObsTraceWritesChromeJSON(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	var b bytes.Buffer
	err := runObs(context.Background(), &b, "fig7", "", tiny(), obsOpts{traceFile: path})
	if err != nil {
		t.Fatalf("runObs(-trace) = %v", err)
	}
	// The rendered report itself is unchanged by -trace alone.
	var plain bytes.Buffer
	if err := run(context.Background(), &plain, "fig7", "", tiny()); err != nil {
		t.Fatal(err)
	}
	if b.String() != plain.String() {
		t.Error("-trace changed the rendered report")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	// The four fig7 variants each appear as a named process.
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = true
		}
	}
	for _, want := range []string{"comp/baseline", "comp/microthread",
		"comp/microthread+prune", "comp/microthread+overhead-only"} {
		if !names[want] {
			t.Errorf("trace missing run %q (have %v)", want, names)
		}
	}
}

func TestRunObsMetricsSection(t *testing.T) {
	var b bytes.Buffer
	err := runObs(context.Background(), &b, "fig7", "json", tiny(), obsOpts{metrics: true})
	if err != nil {
		t.Fatalf("runObs(-metrics) = %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["metrics"]; !ok {
		t.Fatalf("no metrics section in keys %v", keysOf(doc))
	}
	var m struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(doc["metrics"], &m); err != nil {
		t.Fatal(err)
	}
	// Reconciliation across layers: the traced spawn count equals the
	// summed per-run statistic for the two spawning variants.
	spawns := m.Counters["fig7.no_prune.micro.spawned"] +
		m.Counters["fig7.prune.micro.spawned"] +
		m.Counters["fig7.overhead.micro.spawned"]
	if got := m.Counters["trace.spawn"]; got != spawns {
		t.Errorf("trace.spawn = %d, summed stats = %d", got, spawns)
	}
	if m.Counters["fig7.prune.insts"] == 0 {
		t.Error("metrics missing run statistics")
	}
}

func TestRunObsMetricsText(t *testing.T) {
	var b bytes.Buffer
	err := runObs(context.Background(), &b, "fig7", "", tiny(), obsOpts{metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Metrics") || !strings.Contains(out, "trace.spawn") {
		t.Errorf("text metrics section missing:\n%s", out)
	}
}

// TestRunAllGolden pins the text output of -exp all for two benchmarks
// byte-for-byte against a file generated before the predictor-backend
// registry existed. It is the refactor's acceptance check: the default
// (zero) PredictorSpec must reproduce the original gshare/PAs hybrid
// exactly — same predictions, same counters, same rendering.
func TestRunAllGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	opts := dpbp.ExperimentOptions{
		Benchmarks:   []string{"comp", "gcc"},
		TimingInsts:  60_000,
		ProfileInsts: 60_000,
		Cache:        dpbp.NewRunCache(),
	}
	var b bytes.Buffer
	if err := run(context.Background(), &b, "all", "", opts); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b.Bytes(), want) {
		return
	}
	gotLines := strings.Split(b.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("output diverges from testdata/golden_all.txt at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("output differs from golden (length mismatch only)")
}

func TestCheckBackend(t *testing.T) {
	for _, name := range append([]string{""}, dpbp.PredictorBackends()...) {
		if err := checkBackend(name); err != nil {
			t.Errorf("checkBackend(%q) = %v", name, err)
		}
	}
	if err := checkBackend("nope"); err == nil || !strings.Contains(err.Error(), "unknown predictor backend") {
		t.Errorf("checkBackend(nope) = %v", err)
	}
}

// TestRunShootoutJSON is the CI smoke test for the backend arena: a tiny
// shootout must emit one valid JSON document whose configs, rows, and
// geomeans are parallel and include the microthread+TAGE contender.
func TestRunShootoutJSON(t *testing.T) {
	var b bytes.Buffer
	if err := run(context.Background(), &b, "shootout", "json", tiny()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Configs []string `json:"configs"`
		Rows    []struct {
			Bench string `json:"bench"`
			Cells []struct {
				IPC           float64 `json:"ipc"`
				Speedup       float64 `json:"speedup"`
				MispredictPct float64 `json:"mispredict_pct"`
			} `json:"cells"`
		} `json:"rows"`
		Geomean []float64 `json:"geomean"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Configs) < 4 {
		t.Fatalf("shootout has %d configs, want >= 4: %v", len(doc.Configs), doc.Configs)
	}
	want := map[string]bool{"hybrid": false, "tage": false, "uthread+tage": false}
	for _, c := range doc.Configs {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for c, seen := range want {
		if !seen {
			t.Errorf("shootout configs %v missing %q", doc.Configs, c)
		}
	}
	if len(doc.Geomean) != len(doc.Configs) {
		t.Errorf("geomean length %d, configs %d", len(doc.Geomean), len(doc.Configs))
	}
	if len(doc.Rows) != 1 || doc.Rows[0].Bench != "comp" {
		t.Fatalf("unexpected rows: %s", b.String())
	}
	cells := doc.Rows[0].Cells
	if len(cells) != len(doc.Configs) {
		t.Fatalf("row has %d cells, %d configs", len(cells), len(doc.Configs))
	}
	if cells[0].Speedup != 1 {
		t.Errorf("reference speedup = %v, want 1", cells[0].Speedup)
	}
	for i, c := range cells {
		if c.IPC <= 0 {
			t.Errorf("config %q: IPC = %v", doc.Configs[i], c.IPC)
		}
	}
}

func TestRunShootoutTextAndCSV(t *testing.T) {
	var txt bytes.Buffer
	if err := run(context.Background(), &txt, "shootout", "", tiny()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Shootout", "uthread+tage", "Geomean"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("shootout text missing %q:\n%s", want, txt.String())
		}
	}
	var csvOut bytes.Buffer
	if err := run(context.Background(), &csvOut, "shootout", "csv", tiny()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "bench,config,") {
		t.Errorf("unexpected shootout CSV:\n%s", csvOut.String())
	}
}

// TestRunSMTJSON is the CI smoke test for the SMT interference study: a
// tiny overridden mix must emit one valid JSON document whose mixes,
// variants, and per-context rows are fully populated.
func TestRunSMTJSON(t *testing.T) {
	opts := tiny()
	var err error
	if opts.SMT, err = dpbp.ParseSMTSpec("comp+comp"); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := run(context.Background(), &b, "smt", "json", opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		FetchPolicy string `json:"fetch_policy"`
		Mixes       []struct {
			Name     string `json:"name"`
			Variants []struct {
				Sharing    string  `json:"sharing"`
				MachineIPC float64 `json:"machine_ipc"`
				Contexts   []struct {
					Bench   string  `json:"bench"`
					IPC     float64 `json:"ipc"`
					SoloIPC float64 `json:"solo_ipc"`
				} `json:"contexts"`
			} `json:"variants"`
		} `json:"mixes"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.FetchPolicy != "rr" {
		t.Errorf("fetch policy = %q", doc.FetchPolicy)
	}
	if len(doc.Mixes) != 1 || doc.Mixes[0].Name != "comp+comp" {
		t.Fatalf("unexpected mixes: %s", b.String())
	}
	if len(doc.Mixes[0].Variants) != 2 {
		t.Fatalf("want both sharing variants: %s", b.String())
	}
	for _, v := range doc.Mixes[0].Variants {
		if v.Sharing == "" || v.MachineIPC <= 0 || len(v.Contexts) != 2 {
			t.Errorf("incomplete variant: %+v", v)
		}
		for _, c := range v.Contexts {
			if c.Bench != "comp" || c.IPC <= 0 || c.SoloIPC <= 0 {
				t.Errorf("incomplete context row: %+v", c)
			}
		}
	}
}

func TestRunSMTTextAndCSV(t *testing.T) {
	opts := tiny()
	var err error
	if opts.SMT, err = dpbp.ParseSMTSpec("comp+comp:icount"); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := run(context.Background(), &txt, "smt", "", opts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SMT", "icount", "comp+comp", "private", "shared-pathcache"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("smt text missing %q:\n%s", want, txt.String())
		}
	}
	var csvOut bytes.Buffer
	if err := run(context.Background(), &csvOut, "smt", "csv", opts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "mix,sharing,") {
		t.Errorf("unexpected smt CSV:\n%s", csvOut.String())
	}
}

// TestRunSMTBadSpec pins the CLI-facing error path: an unknown benchmark
// in an -smt spec fails before any experiment runs.
func TestRunSMTBadSpec(t *testing.T) {
	if _, err := dpbp.ParseSMTSpec("comp+nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("ParseSMTSpec(comp+nope) = %v", err)
	}
}

// TestRunBPredFlagChangesRuns exercises the -bpred plumbing end to end:
// a TAGE-backed fig7 run must succeed and differ from the default's
// output (different predictor, different timings).
func TestRunBPredFlagChangesRuns(t *testing.T) {
	var def, tage bytes.Buffer
	if err := run(context.Background(), &def, "fig7", "", tiny()); err != nil {
		t.Fatal(err)
	}
	opts := tiny()
	opts.BPred.Name = dpbp.BackendTAGE
	if err := run(context.Background(), &tage, "fig7", "", opts); err != nil {
		t.Fatal(err)
	}
	if def.String() == tage.String() {
		t.Error("-bpred tage produced byte-identical fig7 output")
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestResolveJobs pins the -j / -par reconciliation: -par alone works
// (with a deprecation warning), agreement is tolerated, and conflicting
// nonzero values are an error rather than a silent preference.
func TestResolveJobs(t *testing.T) {
	cases := []struct {
		name      string
		jobs, par int
		want      int
		wantErr   bool
		wantWarn  bool
	}{
		{name: "neither", jobs: 0, par: 0, want: 0},
		{name: "j only", jobs: 3, par: 0, want: 3},
		{name: "par only", jobs: 0, par: 2, want: 2, wantWarn: true},
		{name: "agreeing", jobs: 4, par: 4, want: 4, wantWarn: true},
		{name: "conflicting", jobs: 3, par: 2, wantErr: true, wantWarn: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var warn bytes.Buffer
			got, err := resolveJobs(&warn, tc.jobs, tc.par)
			if tc.wantErr {
				if err == nil {
					t.Fatal("conflicting -j/-par accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("resolveJobs(%d, %d) = %d, want %d", tc.jobs, tc.par, got, tc.want)
			}
			if gotWarn := strings.Contains(warn.String(), "deprecated"); gotWarn != tc.wantWarn {
				t.Errorf("warning output %q, wantWarn=%v", warn.String(), tc.wantWarn)
			}
		})
	}
}
