// Command pathprof profiles one benchmark's control-flow paths against the
// baseline predictor and prints its Table 1/Table 2 characterisation.
//
// Usage:
//
//	pathprof -bench gcc [-insts 1000000]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpbp"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	insts := flag.Uint64("insts", 1_000_000, "instruction budget")
	flag.Parse()

	w, err := dpbp.NewWorkload(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathprof:", err)
		os.Exit(1)
	}
	p := dpbp.Profile(w, dpbp.PathProfileConfig{MaxInsts: *insts})
	fmt.Println(p)

	fmt.Println("\nPath characterisation (Table 1 slice):")
	for _, row := range p.Table1([]float64{0.05, 0.10, 0.15}) {
		fmt.Printf("  n=%-2d unique=%-8d avgScope=%-8.2f difficult@.05=%-7d @.10=%-7d @.15=%d\n",
			row.N, row.UniquePaths, row.AvgScope,
			row.DifficultAt[0.05], row.DifficultAt[0.10], row.DifficultAt[0.15])
	}

	fmt.Println("\nCoverage (Table 2 slice):")
	for _, row := range p.Table2([]float64{0.05, 0.10, 0.15}) {
		fmt.Printf("  T=%.2f  branches: mis%%=%5.1f exe%%=%5.1f", row.T, row.Branch.MisPct, row.Branch.ExePct)
		for _, n := range []int{4, 10, 16} {
			c := row.ByN[n]
			fmt.Printf("  n=%d: mis%%=%5.1f exe%%=%5.1f", n, c.MisPct, c.ExePct)
		}
		fmt.Println()
	}
}
