// Command pathprof profiles one benchmark's control-flow paths against the
// baseline predictor and prints its Table 1/Table 2 characterisation.
//
// Usage:
//
//	pathprof -bench gcc [-insts 1000000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpbp"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	insts := flag.Uint64("insts", 1_000_000, "instruction budget")
	flag.Parse()

	if err := run(os.Stdout, *bench, *insts); err != nil {
		fmt.Fprintln(os.Stderr, "pathprof:", err)
		os.Exit(1)
	}
}

// run profiles one benchmark and writes its characterisation to w. It is
// the whole CLI behind flag parsing, so tests can drive it directly.
func run(w io.Writer, bench string, insts uint64) error {
	wl, err := dpbp.NewWorkload(bench)
	if err != nil {
		return err
	}
	p := dpbp.Profile(wl, dpbp.PathProfileConfig{MaxInsts: insts})
	fmt.Fprintln(w, p)

	fmt.Fprintln(w, "\nPath characterisation (Table 1 slice):")
	for _, row := range p.Table1([]float64{0.05, 0.10, 0.15}) {
		fmt.Fprintf(w, "  n=%-2d unique=%-8d avgScope=%-8.2f difficult@.05=%-7d @.10=%-7d @.15=%d\n",
			row.N, row.UniquePaths, row.AvgScope,
			row.DifficultAt[0.05], row.DifficultAt[0.10], row.DifficultAt[0.15])
	}

	fmt.Fprintln(w, "\nCoverage (Table 2 slice):")
	for _, row := range p.Table2([]float64{0.05, 0.10, 0.15}) {
		fmt.Fprintf(w, "  T=%.2f  branches: mis%%=%5.1f exe%%=%5.1f", row.T, row.Branch.MisPct, row.Branch.ExePct)
		for _, n := range []int{4, 10, 16} {
			c := row.ByN[n]
			fmt.Fprintf(w, "  n=%d: mis%%=%5.1f exe%%=%5.1f", n, c.MisPct, c.ExePct)
		}
		fmt.Fprintln(w)
	}
	return nil
}
