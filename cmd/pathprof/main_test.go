package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProfilesBenchmark(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "comp", 60_000); err != nil {
		t.Fatalf("run(comp) = %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"Path characterisation (Table 1 slice):",
		"Coverage (Table 2 slice):",
		"n=4", "T=0.05",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "nope", 1_000); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if b.Len() != 0 {
		t.Errorf("failed run wrote output: %q", b.String())
	}
}
