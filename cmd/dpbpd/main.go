// Command dpbpd serves sweeps over HTTP: the dpbp experiment harness
// behind a bounded queue, a pool of worker shards, and a two-tier run
// cache, so many clients can share one warm server (see internal/serve
// for the architecture and DESIGN.md §16 for the rationale).
//
// Serve mode (default):
//
//	dpbpd [-addr HOST:PORT] [-workers N] [-queue N]
//	      [-cache-entries N] [-cache-bytes N] [-dcache DIR]
//	      [-j N] [-run-timeout D] [-sweep-timeout D]
//
// The API is three endpoints: POST /api/v1/sweeps (a Submission body,
// answered with a streamed NDJSON event sequence ending in the final
// document, byte-identical to `dpbp -format json` for the same sweep),
// GET /healthz, and GET /metrics. A full queue answers 429 with
// Retry-After; -dcache makes warm entries survive restarts.
//
// Swarm mode (-swarm N) turns the binary into its own load generator:
// N concurrent clients each submit -requests sweeps of the workload
// described by -exp/-bench/-insts/-profinsts, mixing warm repeats with
// cold variants, and the run's throughput/latency percentiles are
// written as JSON to -out. With -url it drives a running server;
// without, it starts an in-process one so a single command benchmarks
// the whole stack.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpbp/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (serve mode)")
	workers := flag.Int("workers", 0, "concurrent sweep shards (0 = default)")
	queue := flag.Int("queue", 0, "queued submissions beyond the in-flight ones (0 = default)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory run-cache entry bound (0 = default, negative = unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory run-cache byte bound (0 = none)")
	diskDir := flag.String("dcache", "", "content-addressed disk cache directory (empty = memory only)")
	jobs := flag.Int("j", 0, "per-sweep parallel benchmark runs (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "default per-benchmark-run budget (0 = none)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "whole-submission budget (0 = none)")

	swarm := flag.Int("swarm", 0, "swarm mode: drive this many concurrent clients instead of serving")
	url := flag.String("url", "", "swarm target base URL (empty = start an in-process server)")
	requests := flag.Int("requests", 3, "swarm: sweeps per client")
	expName := flag.String("exp", "perfect", "swarm: experiment for the warm workload")
	bench := flag.String("bench", "comp", "swarm: comma-separated benchmarks for the warm workload")
	insts := flag.Uint64("insts", 60_000, "swarm: timing-run instruction budget")
	profInsts := flag.Uint64("profinsts", 60_000, "swarm: profiling-run instruction budget")
	out := flag.String("out", "", "swarm: write the JSON load report to this file (empty = stdout only)")
	flag.Parse()

	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		DiskDir:      *diskDir,
		Parallelism:  *jobs,
		RunTimeout:   *runTimeout,
		SweepTimeout: *sweepTimeout,
	}
	var code int
	if *swarm > 0 {
		code = runSwarm(cfg, *url, *swarm, *requests, *expName, *bench, *insts, *profInsts, *out)
	} else {
		code = runServe(cfg, *addr)
	}
	os.Exit(code)
}

// runServe listens and serves until SIGINT/SIGTERM.
func runServe(cfg serve.Config, addr string) int {
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbpd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbpd:", err)
		return 1
	}
	fmt.Printf("dpbpd: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "dpbpd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "dpbpd:", err)
		}
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "dpbpd:", err)
			if cerr := s.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "dpbpd:", cerr)
			}
			return 1
		}
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dpbpd:", err)
		return 1
	}
	return 0
}

// runSwarm drives the load generator, optionally self-hosting the
// target, and writes the report.
func runSwarm(cfg serve.Config, url string, clients, requests int,
	expName, bench string, insts, profInsts uint64, out string) int {
	if url == "" {
		s, err := serve.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpbpd:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpbpd:", err)
			return 1
		}
		hs := &http.Server{Handler: s}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "dpbpd:", err)
			}
		}()
		defer func() {
			if err := hs.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpbpd:", err)
			}
			if err := s.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpbpd:", err)
			}
		}()
		url = "http://" + ln.Addr().String()
		fmt.Printf("dpbpd: swarm target (in-process) %s\n", url)
	}

	warm := serve.Submission{
		Experiment:   expName,
		Benchmarks:   splitBenches(bench),
		TimingInsts:  insts,
		ProfileInsts: profInsts,
	}
	// Cold variants differ in budget, so they are genuinely uncached on
	// first sight but deterministic on repeats.
	var cold []serve.Submission
	for i := uint64(1); i <= 3; i++ {
		c := warm
		c.TimingInsts = insts + i*1_000
		c.ProfileInsts = profInsts + i*1_000
		cold = append(cold, c)
	}

	res, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		URL: url, Clients: clients, Requests: requests,
		Warm: warm, Cold: cold, ColdEvery: 3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbpd:", err)
		return 1
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbpd:", err)
		return 1
	}
	doc = append(doc, '\n')
	if out != "" {
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dpbpd:", err)
			return 1
		}
	}
	fmt.Printf("%s", doc)
	fmt.Printf("dpbpd: swarm %d clients x %d requests: %d completed, %d failed, %d retried (429), hit rate %.3f\n",
		res.Clients, res.Requests, res.Completed, res.Failed, res.Retried429, res.CacheHitRate)
	if res.Failed > 0 {
		return 1
	}
	return 0
}

// splitBenches splits the -bench list, dropping empties.
func splitBenches(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
