package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTracesDynamicStream(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "li", false, 32); err != nil {
		t.Fatalf("run(li) = %v", err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 32 {
		t.Fatalf("traced %d records, want 32:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], "0") {
		t.Errorf("first record missing sequence number: %q", lines[0])
	}
}

func TestRunDisassembles(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "li", true, 0); err != nil {
		t.Fatalf("run(li, disasm) = %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "instructions, entry @") {
		t.Errorf("disassembly missing header:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Errorf("disassembly suspiciously short:\n%s", out)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, "nope", false, 8); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if b.Len() != 0 {
		t.Errorf("failed run wrote output: %q", b.String())
	}
}
