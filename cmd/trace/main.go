// Command trace inspects synthetic benchmarks: static disassembly or a
// prefix of the dynamic instruction stream.
//
// Usage:
//
//	trace -bench li -disasm            # static code
//	trace -bench li -n 100             # first 100 dynamic records
package main

import (
	"flag"
	"fmt"
	"os"

	"dpbp"
	"dpbp/internal/emu"
	"dpbp/internal/isa"
)

func main() {
	bench := flag.String("bench", "li", "benchmark name")
	disasm := flag.Bool("disasm", false, "print static disassembly instead of a trace")
	n := flag.Uint64("n", 64, "number of dynamic instructions to trace")
	flag.Parse()

	w, err := dpbp.NewWorkload(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}

	if *disasm {
		fmt.Printf("%s: %d instructions, entry @%d, %d data words\n\n",
			w.Name, len(w.Program.Code), w.Program.Entry, len(w.Program.Data))
		fmt.Print(w.Program.Disassemble(0, isa.Addr(len(w.Program.Code))))
		return
	}

	m := emu.New(w.Program)
	m.Run(*n, func(r *emu.Record) bool {
		marker := " "
		if r.Inst.IsBranch() {
			if r.Taken {
				marker = "T"
			} else {
				marker = "."
			}
		}
		fmt.Printf("%6d %s %6d: %-28s", r.Seq, marker, r.PC, r.Inst)
		if r.Inst.IsLoad() || r.Inst.IsStore() {
			fmt.Printf(" ea=%d", r.EA)
		}
		if _, ok := r.Inst.Writes(); ok {
			fmt.Printf(" -> %d", r.DstVal)
		}
		fmt.Println()
		return true
	})
}
