// Command trace inspects synthetic benchmarks: static disassembly or a
// prefix of the dynamic instruction stream.
//
// Usage:
//
//	trace -bench li -disasm            # static code
//	trace -bench li -n 100             # first 100 dynamic records
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpbp"
	"dpbp/internal/emu"
	"dpbp/internal/isa"
)

func main() {
	bench := flag.String("bench", "li", "benchmark name")
	disasm := flag.Bool("disasm", false, "print static disassembly instead of a trace")
	n := flag.Uint64("n", 64, "number of dynamic instructions to trace")
	flag.Parse()

	if err := run(os.Stdout, *bench, *disasm, *n); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

// run inspects one benchmark and writes the disassembly or trace to w. It
// is the whole CLI behind flag parsing, so tests can drive it directly.
func run(w io.Writer, bench string, disasm bool, n uint64) error {
	wl, err := dpbp.NewWorkload(bench)
	if err != nil {
		return err
	}

	if disasm {
		fmt.Fprintf(w, "%s: %d instructions, entry @%d, %d data words\n\n",
			wl.Name, len(wl.Program.Code), wl.Program.Entry, len(wl.Program.Data))
		fmt.Fprint(w, wl.Program.Disassemble(0, isa.Addr(len(wl.Program.Code))))
		return nil
	}

	m := emu.New(wl.Program)
	m.Run(n, func(r *emu.Record) bool {
		marker := " "
		if r.Inst.IsBranch() {
			if r.Taken {
				marker = "T"
			} else {
				marker = "."
			}
		}
		fmt.Fprintf(w, "%6d %s %6d: %-28s", r.Seq, marker, r.PC, r.Inst)
		if r.Inst.IsLoad() || r.Inst.IsStore() {
			fmt.Fprintf(w, " ea=%d", r.EA)
		}
		if _, ok := r.Inst.Writes(); ok {
			fmt.Fprintf(w, " -> %d", r.DstVal)
		}
		fmt.Fprintln(w)
		return true
	})
	return nil
}
