// Command dpbplint is the repository's invariant checker: a multichecker
// that runs the internal/analysis suite — simdeterminism, configplumb,
// counterwidth, errchecklite, resetcomplete, statsdrift, specpurity —
// over the module, alongside the standard go vet passes. CI (and
// `make lint`) gate on its exit status; a clean tree exits 0.
//
// Usage:
//
//	go run ./cmd/dpbplint ./...
//
// Flags:
//
//	-novet        skip the go vet passes (run only the dpbplint analyzers)
//	-vetflags s   extra flags passed through to go vet (e.g. "-copylocks=false")
//
// Findings print as file:line:col: [analyzer] message. A finding is
// fixed, redesigned, or — when provably a false positive — annotated on
// its line with an auditable justification:
//
//	//dpbplint:ignore <analyzer> <why this is safe>
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"strings"

	"dpbp/internal/analysis"
	"dpbp/internal/analysis/configplumb"
	"dpbp/internal/analysis/counterwidth"
	"dpbp/internal/analysis/errchecklite"
	"dpbp/internal/analysis/loader"
	"dpbp/internal/analysis/resetcomplete"
	"dpbp/internal/analysis/simdeterminism"
	"dpbp/internal/analysis/specpurity"
	"dpbp/internal/analysis/statsdrift"
)

// analyzers is the dpbplint suite, in reporting-priority order.
var analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	configplumb.Analyzer,
	counterwidth.Analyzer,
	errchecklite.Analyzer,
	resetcomplete.Analyzer,
	statsdrift.Analyzer,
	specpurity.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the go vet passes")
	vetflags := flag.String("vetflags", "", "extra flags passed through to go vet")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dpbplint [-novet] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		if err := runGoVet(patterns, *vetflags); err != nil {
			failed = true
		}
	}

	diags, err := runSuite(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbplint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// finding is a rendered diagnostic.
type finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// runSuite loads the module packages and applies the analyzer suite.
func runSuite(patterns []string) ([]finding, error) {
	fset := token.NewFileSet()
	units, err := loader.LoadModule(fset, ".", patterns)
	if err != nil {
		return nil, err
	}
	diags, err := analysis.Run(fset, units, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]finding, len(diags))
	for i, d := range diags {
		out[i] = finding{Position: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message}
	}
	return out, nil
}

// runGoVet shells out to the toolchain's vet passes over the same
// patterns, streaming its report.
func runGoVet(patterns []string, extra string) error {
	args := []string{"vet"}
	if extra != "" {
		args = append(args, strings.Fields(extra)...)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}
