package dpbp

import "dpbp/internal/exp"

// ExperimentOptions selects benchmarks and budgets for the paper's
// experiments. The zero value runs all twenty benchmarks with the default
// instruction budgets.
type ExperimentOptions = exp.Options

// Experiment results, one type per paper table/figure; each renders a
// paper-shaped text table via String.
type (
	// Table1Result holds unique-path counts, average scopes, and
	// difficult-path counts (paper Table 1).
	Table1Result = exp.Table1Result
	// Table2Result holds misprediction/execution coverages for
	// difficult branches vs difficult paths (paper Table 2).
	Table2Result = exp.Table2Result
	// Figure6Result holds potential speed-ups from perfect
	// difficult-path prediction (paper Figure 6).
	Figure6Result = exp.Figure6Result
	// Figure7Result holds realistic speed-ups with/without pruning and
	// overhead-only (paper Figure 7).
	Figure7Result = exp.Figure7Result
	// Figure8Result holds average routine sizes and dependence chains
	// (paper Figure 8).
	Figure8Result = exp.Figure8Result
	// Figure9Result holds prediction-timeliness breakdowns (paper
	// Figure 9).
	Figure9Result = exp.Figure9Result
	// PerfectResult holds the Section 1 perfect-prediction bound.
	PerfectResult = exp.PerfectResult
	// ProfileGuidedResult holds the profile-guided-promotion extension
	// experiment (the paper's future work).
	ProfileGuidedResult = exp.ProfileGuidedResult
	// Figure7Runs bundles the shared runs behind Figures 7-9.
	Figure7Runs = exp.Figure7Runs
)

// Table1 reproduces paper Table 1.
func Table1(o ExperimentOptions) (*Table1Result, error) { return exp.Table1(o) }

// Table2 reproduces paper Table 2.
func Table2(o ExperimentOptions) (*Table2Result, error) { return exp.Table2(o) }

// Figure6 reproduces paper Figure 6.
func Figure6(o ExperimentOptions) (*Figure6Result, error) { return exp.Figure6(o) }

// Figure7 reproduces paper Figure 7.
func Figure7(o ExperimentOptions) (*Figure7Result, error) { return exp.Figure7(o) }

// Figure8 reproduces paper Figure 8.
func Figure8(o ExperimentOptions) (*Figure8Result, error) { return exp.Figure8(o) }

// Figure9 reproduces paper Figure 9.
func Figure9(o ExperimentOptions) (*Figure9Result, error) { return exp.Figure9(o) }

// Perfect reproduces the Section 1 perfect-prediction bound.
func Perfect(o ExperimentOptions) (*PerfectResult, error) { return exp.Perfect(o) }

// ProfileGuided runs the profile-guided-promotion extension experiment.
func ProfileGuided(o ExperimentOptions) (*ProfileGuidedResult, error) { return exp.ProfileGuided(o) }

// RunFigure7Set performs the four timing runs behind Figures 7-9 once, so
// the three figures can be rendered from shared runs:
//
//	runs, _ := dpbp.RunFigure7Set(opts)
//	fmt.Println((&dpbp.Figure7Result{Runs: runs}).String())
//	fmt.Println(dpbp.Figure8FromRuns(runs).String())
//	fmt.Println(dpbp.Figure9FromRuns(runs).String())
func RunFigure7Set(o ExperimentOptions) ([]Figure7Runs, error) { return exp.RunFigure7Set(o) }

// Figure8FromRuns renders Figure 8 from an existing run set.
func Figure8FromRuns(runs []Figure7Runs) *Figure8Result { return exp.Figure8FromRuns(runs) }

// Figure9FromRuns renders Figure 9 from an existing run set.
func Figure9FromRuns(runs []Figure7Runs) *Figure9Result { return exp.Figure9FromRuns(runs) }

// AblationResult holds the design-choice ablation study.
type AblationResult = exp.AblationResult

// Ablations runs the design-choice ablation study from DESIGN.md §5.
func Ablations(o ExperimentOptions) (*AblationResult, error) { return exp.Ablations(o) }
