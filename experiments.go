package dpbp

import (
	"context"
	"io"

	"dpbp/internal/exp"
	"dpbp/internal/obs"
	"dpbp/internal/report"
	"dpbp/internal/results"
	"dpbp/internal/runcache"
)

// ExperimentOptions selects benchmarks and budgets for the paper's
// experiments. The zero value runs all twenty benchmarks with the default
// instruction budgets, no per-run timeout, and NumCPU parallelism.
type ExperimentOptions = exp.Options

// RunCache memoizes timing runs, profiling runs, and generated benchmark
// programs by content-addressed key, with single-flight semantics for
// concurrent requests. Assign one (via NewRunCache) to
// ExperimentOptions.Cache and share it across experiment calls: because
// the simulator is bit-deterministic, cached results are identical to
// fresh ones, and each unique run is computed exactly once. Cached
// results are shared — treat them as immutable.
type RunCache = runcache.Cache

// RunCacheStats is a snapshot of a RunCache's traffic counters.
type RunCacheStats = runcache.Stats

// NewRunCache returns an empty run cache.
func NewRunCache() *RunCache { return runcache.New() }

// Tracer records one timing run's microthread lifecycle events and
// occupancy samples; assign one to MachineConfig.Obs. A nil tracer
// disables tracing at zero cost, and tracing never perturbs results.
type Tracer = obs.Tracer

// NewTracer returns an enabled tracer with default limits.
func NewTracer() *Tracer { return obs.NewTracer() }

// TraceCollector aggregates the tracers of a multi-run sweep; assign one
// to ExperimentOptions.Trace to trace every timing run of an experiment,
// then export with WriteChromeTrace.
type TraceCollector = obs.Collector

// NewTraceCollector returns an empty trace collector.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// MetricsRegistry is an ordered, JSON-serializable counter/histogram
// view unifying the simulator's statistics structs; see
// MetricsRegistry.AddStruct and Tracer.AddTo.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteChromeTrace writes every run collected by c as one Chrome
// trace-event JSON document (loadable in Perfetto or chrome://tracing),
// with event timestamps in fetch cycles.
func WriteChromeTrace(w io.Writer, c *TraceCollector) error { return c.WriteChromeTrace(w) }

// RunError records one benchmark run that failed to complete (panic,
// cancellation, per-run timeout). Results carrying a non-empty Errors
// list are partial: the surviving rows are complete and correct.
type RunError = results.RunError

// Experiment results, one plain data struct per paper table/figure
// (JSON-taggable; see Render for output formats).
type (
	// Table1Result holds unique-path counts, average scopes, and
	// difficult-path counts (paper Table 1).
	Table1Result = exp.Table1Result
	// Table2Result holds misprediction/execution coverages for
	// difficult branches vs difficult paths (paper Table 2).
	Table2Result = exp.Table2Result
	// Figure6Result holds potential speed-ups from perfect
	// difficult-path prediction (paper Figure 6).
	Figure6Result = exp.Figure6Result
	// Figure7Result holds realistic speed-ups with/without pruning and
	// overhead-only (paper Figure 7).
	Figure7Result = exp.Figure7Result
	// Figure8Result holds average routine sizes and dependence chains
	// (paper Figure 8).
	Figure8Result = exp.Figure8Result
	// Figure9Result holds prediction-timeliness breakdowns (paper
	// Figure 9).
	Figure9Result = exp.Figure9Result
	// PerfectResult holds the Section 1 perfect-prediction bound.
	PerfectResult = exp.PerfectResult
	// ProfileGuidedResult holds the profile-guided-promotion extension
	// experiment (the paper's future work).
	ProfileGuidedResult = exp.ProfileGuidedResult
	// Figure7Runs bundles the shared runs behind Figures 7-9.
	Figure7Runs = exp.Figure7Runs
)

// Output formats accepted by Render.
const (
	FormatText = report.FormatText
	FormatJSON = report.FormatJSON
	FormatCSV  = report.FormatCSV
)

// Render writes an experiment result to w in the given format (""
// means text). Text output is the paper-shaped table; JSON and CSV are
// machine-readable.
func Render(w io.Writer, format string, result any) error {
	return report.Render(w, format, result)
}

// Text renders an experiment result as its paper-shaped text table. It
// errors only on a value that is not an experiment result type.
func Text(result any) (string, error) { return report.TextString(result) }

// Table1 reproduces paper Table 1.
func Table1(ctx context.Context, o ExperimentOptions) (*Table1Result, error) {
	return exp.Table1(ctx, o)
}

// Table2 reproduces paper Table 2.
func Table2(ctx context.Context, o ExperimentOptions) (*Table2Result, error) {
	return exp.Table2(ctx, o)
}

// Figure6 reproduces paper Figure 6.
func Figure6(ctx context.Context, o ExperimentOptions) (*Figure6Result, error) {
	return exp.Figure6(ctx, o)
}

// Figure7 reproduces paper Figure 7.
func Figure7(ctx context.Context, o ExperimentOptions) (*Figure7Result, error) {
	return exp.Figure7(ctx, o)
}

// Figure8 reproduces paper Figure 8.
func Figure8(ctx context.Context, o ExperimentOptions) (*Figure8Result, error) {
	return exp.Figure8(ctx, o)
}

// Figure9 reproduces paper Figure 9.
func Figure9(ctx context.Context, o ExperimentOptions) (*Figure9Result, error) {
	return exp.Figure9(ctx, o)
}

// Perfect reproduces the Section 1 perfect-prediction bound.
func Perfect(ctx context.Context, o ExperimentOptions) (*PerfectResult, error) {
	return exp.Perfect(ctx, o)
}

// ProfileGuided runs the profile-guided-promotion extension experiment.
func ProfileGuided(ctx context.Context, o ExperimentOptions) (*ProfileGuidedResult, error) {
	return exp.ProfileGuided(ctx, o)
}

// RunFigure7Set performs the four timing runs behind Figures 7-9 once, so
// the three figures can be rendered from shared runs:
//
//	runs, runErrs, _ := dpbp.RunFigure7Set(ctx, opts)
//	fmt.Print(dpbp.Text(&dpbp.Figure7Result{Runs: runs, Errors: runErrs}))
//	fmt.Print(dpbp.Text(dpbp.Figure8FromRuns(runs)))
//	fmt.Print(dpbp.Text(dpbp.Figure9FromRuns(runs)))
func RunFigure7Set(ctx context.Context, o ExperimentOptions) ([]Figure7Runs, []RunError, error) {
	return exp.RunFigure7Set(ctx, o)
}

// Figure8FromRuns builds Figure 8 from an existing run set.
func Figure8FromRuns(runs []Figure7Runs) *Figure8Result { return exp.Figure8FromRuns(runs) }

// Figure9FromRuns builds Figure 9 from an existing run set.
func Figure9FromRuns(runs []Figure7Runs) *Figure9Result { return exp.Figure9FromRuns(runs) }

// AblationResult holds the design-choice ablation study.
type AblationResult = exp.AblationResult

// Ablations runs the design-choice ablation study from DESIGN.md §5.
func Ablations(ctx context.Context, o ExperimentOptions) (*AblationResult, error) {
	return exp.Ablations(ctx, o)
}

// ShootoutResult holds the predictor-backend arena: per benchmark, IPC,
// speedup over the hybrid baseline, and misprediction rate for every
// contending configuration.
type ShootoutResult = exp.ShootoutResult

// Shootout pits the predictor backends (hybrid, TAGE, H2P side
// predictor) against the microthread machinery, including an H2P-gated
// microthread variant.
func Shootout(ctx context.Context, o ExperimentOptions) (*ShootoutResult, error) {
	return exp.Shootout(ctx, o)
}

// SMTExperimentResult holds the SMT interference study: benchmark mixes
// co-scheduled as primary contexts, per-context IPC and difficult-path
// coverage vs solo, and contended-spawn denial rates, under private and
// shared structure variants.
type SMTExperimentResult = exp.SMTResult

// SMTStudy runs the SMT interference study. ExperimentOptions.SMT, when
// it carries contexts, overrides the canned mix list, fetch policy, and
// shared-variant flags; ParseSMTSpec builds one from the CLI's -smt
// vocabulary.
func SMTStudy(ctx context.Context, o ExperimentOptions) (*SMTExperimentResult, error) {
	return exp.SMT(ctx, o)
}

// ParseSMTSpec parses the -smt spec vocabulary
// ("bench+bench[:policy][:flags]") into the SMTConfig that
// ExperimentOptions.SMT and MachineConfig.SMT accept.
func ParseSMTSpec(s string) (SMTConfig, error) { return exp.ParseSMTSpec(s) }
