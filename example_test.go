package dpbp_test

import (
	"context"
	"fmt"

	"dpbp"
)

// ExampleRun compares the baseline Table 3 machine against the paper's
// full difficult-path microthreading mechanism on one benchmark.
func ExampleRun() {
	w := dpbp.MustWorkload("gcc")

	base := dpbp.BaselineConfig()
	base.MaxInsts = 200_000
	mech := dpbp.DefaultConfig()
	mech.MaxInsts = 200_000

	rb := dpbp.Run(w, base)
	rm := dpbp.Run(w, mech)
	fmt.Printf("speed-up positive: %v\n", rm.Speedup(rb) > 1)
	// Output: speed-up positive: true
}

// ExampleProfile characterises a workload's difficult paths the way
// Tables 1 and 2 of the paper do.
func ExampleProfile() {
	w := dpbp.MustWorkload("go")
	p := dpbp.Profile(w, dpbp.PathProfileConfig{MaxInsts: 200_000})
	rows := p.Table2([]float64{0.10})
	c := rows[0].ByN[16]
	b := rows[0].Branch
	fmt.Printf("paths beat branches at misprediction resolution: %v\n",
		c.MisPct >= b.MisPct-5 && c.ExePct <= b.ExePct+5)
	// Output: paths beat branches at misprediction resolution: true
}

// ExampleCustomWorkload builds a synthetic workload from a custom profile
// and measures its baseline misprediction rate.
func ExampleCustomWorkload() {
	p := dpbp.DefaultProfile("mine", 1)
	p.Bias = 0.5 // coin-flip data: maximally hard branches
	w := dpbp.CustomWorkload(p)

	cfg := dpbp.BaselineConfig()
	cfg.MaxInsts = 100_000
	r := dpbp.Run(w, cfg)
	fmt.Printf("hard workload mispredicts: %v\n", r.MispredictRate() > 0.02)
	// Output: hard workload mispredicts: true
}

// ExampleMachineConfig_onBuild inspects the routines the Microthread
// Builder constructs.
func ExampleMachineConfig_onBuild() {
	w := dpbp.MustWorkload("comp")
	cfg := dpbp.DefaultConfig()
	cfg.MaxInsts = 150_000

	built := 0
	cfg.OnBuild = func(r *dpbp.Routine) { built++ }
	res := dpbp.Run(w, cfg)
	fmt.Printf("hook matches builder stats: %v\n", uint64(built) == res.Build.Builds)
	// Output: hook matches builder stats: true
}

// ExampleFigure7 regenerates the paper's headline figure for a subset of
// benchmarks.
func ExampleFigure7() {
	r, err := dpbp.Figure7(context.Background(), dpbp.ExperimentOptions{
		Benchmarks:  []string{"comp"},
		TimingInsts: 100_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("runs per benchmark: %v\n", r.Runs[0].Base != nil &&
		r.Runs[0].NoPrune != nil && r.Runs[0].Prune != nil && r.Runs[0].Overhead != nil)
	// Output: runs per benchmark: true
}
