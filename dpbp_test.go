package dpbp

import (
	"context"
	"strings"
	"testing"
)

func TestBenchmarks(t *testing.T) {
	names := Benchmarks()
	if len(names) != 20 {
		t.Fatalf("got %d benchmarks, want 20", len(names))
	}
}

func TestWorkloadLifecycle(t *testing.T) {
	w, err := NewWorkload("li")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "li" || w.Program == nil || w.Profile.Name != "li" {
		t.Fatalf("workload malformed: %+v", w)
	}
	if _, err := NewWorkload("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload did not panic on bogus name")
		}
	}()
	MustWorkload("bogus")
}

func TestRunBaselineVsMechanism(t *testing.T) {
	w := MustWorkload("comp")
	base := BaselineConfig()
	base.MaxInsts = 150_000
	mech := DefaultConfig()
	mech.MaxInsts = 150_000

	rb := Run(w, base)
	rm := Run(w, mech)
	if rb.IPC() <= 0 || rm.IPC() <= 0 {
		t.Fatalf("empty results: %v %v", rb, rm)
	}
	if rm.Micro.Spawned == 0 {
		t.Error("default config spawned no microthreads")
	}
	if rm.Speedup(rb) <= 0.90 {
		t.Errorf("mechanism lost >10%%: speedup %.3f", rm.Speedup(rb))
	}
}

func TestCustomWorkload(t *testing.T) {
	p := DefaultProfile("mybench", 1234)
	p.Mix = KernelMix(5, 0, 1, 0, 0, 0, 0)
	w := CustomWorkload(p)
	if w.Name != "mybench" {
		t.Fatalf("name = %q", w.Name)
	}
	cfg := BaselineConfig()
	cfg.MaxInsts = 60_000
	r := Run(w, cfg)
	if r.Insts == 0 || r.Branches == 0 {
		t.Fatalf("custom workload did not run: %+v", r)
	}
}

func TestProfileAPI(t *testing.T) {
	w := MustWorkload("go")
	p := Profile(w, PathProfileConfig{MaxInsts: 120_000})
	if p.Branches == 0 || len(p.ByN) != 3 {
		t.Fatalf("profile malformed: %+v", p)
	}
	rows := p.Table1([]float64{0.10})
	if len(rows) != 3 || rows[0].UniquePaths == 0 {
		t.Errorf("table1 rows malformed: %+v", rows)
	}
}

// text renders a result through the root Text helper, failing the test
// on renderer errors so assertions can stay one-line.
func text(t *testing.T, v any) string {
	t.Helper()
	s, err := Text(v)
	if err != nil {
		t.Fatalf("Text(%T): %v", v, err)
	}
	return s
}

func TestExperimentWrappers(t *testing.T) {
	ctx := context.Background()
	o := ExperimentOptions{Benchmarks: []string{"comp"}, TimingInsts: 100_000, ProfileInsts: 100_000}
	t1, err := Table1(ctx, o)
	if err != nil || !strings.Contains(text(t, t1), "Table 1") {
		t.Errorf("Table1 wrapper: %v", err)
	}
	t2, err := Table2(ctx, o)
	if err != nil || !strings.Contains(text(t, t2), "Table 2") {
		t.Errorf("Table2 wrapper: %v", err)
	}
	f6, err := Figure6(ctx, o)
	if err != nil || !strings.Contains(text(t, f6), "Figure 6") {
		t.Errorf("Figure6 wrapper: %v", err)
	}
	runs, runErrs, err := RunFigure7Set(ctx, o)
	if err != nil || len(runErrs) != 0 || len(runs) != 1 {
		t.Fatalf("RunFigure7Set wrapper: %v %v", err, runErrs)
	}
	if !strings.Contains(text(t, &Figure7Result{Runs: runs}), "Figure 7") {
		t.Error("Figure7 render")
	}
	if !strings.Contains(text(t, Figure8FromRuns(runs)), "Figure 8") {
		t.Error("Figure8 render")
	}
	if !strings.Contains(text(t, Figure9FromRuns(runs)), "Figure 9") {
		t.Error("Figure9 render")
	}
	pf, err := Perfect(ctx, o)
	if err != nil || pf.GeomeanSpeedup <= 1 {
		t.Errorf("Perfect wrapper: %v %v", err, pf)
	}
}

func TestStandaloneFigureWrappers(t *testing.T) {
	ctx := context.Background()
	o := ExperimentOptions{Benchmarks: []string{"comp"}, TimingInsts: 60_000, ProfileInsts: 60_000}
	f7, err := Figure7(ctx, o)
	if err != nil || !strings.Contains(text(t, f7), "Figure 7") {
		t.Errorf("Figure7: %v", err)
	}
	f8, err := Figure8(ctx, o)
	if err != nil || !strings.Contains(text(t, f8), "Figure 8") {
		t.Errorf("Figure8: %v", err)
	}
	f9, err := Figure9(ctx, o)
	if err != nil || !strings.Contains(text(t, f9), "Figure 9") {
		t.Errorf("Figure9: %v", err)
	}
	pg, err := ProfileGuided(ctx, o)
	if err != nil || !strings.Contains(text(t, pg), "profile-guided") {
		t.Errorf("ProfileGuided: %v", err)
	}
	ab, err := Ablations(ctx, ExperimentOptions{Benchmarks: []string{"comp"}, TimingInsts: 30_000})
	if err != nil || !strings.Contains(text(t, ab), "Ablations") {
		t.Errorf("Ablations: %v", err)
	}
}

// TestRenderFormats sanity-checks the root Render helper across formats.
func TestRenderFormats(t *testing.T) {
	r, err := Table1(context.Background(),
		ExperimentOptions{Benchmarks: []string{"comp"}, ProfileInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"", FormatText, FormatJSON, FormatCSV} {
		var b strings.Builder
		if err := Render(&b, format, r); err != nil {
			t.Errorf("Render(%q): %v", format, err)
		}
		if b.Len() == 0 {
			t.Errorf("Render(%q): empty output", format)
		}
	}
	if err := Render(&strings.Builder{}, "yaml", r); err == nil {
		t.Error("Render accepted unknown format")
	}
}

func TestOnBuildHook(t *testing.T) {
	w := MustWorkload("comp")
	cfg := DefaultConfig()
	cfg.MaxInsts = 150_000
	var routines []*Routine
	cfg.OnBuild = func(r *Routine) { routines = append(routines, r) }
	res := Run(w, cfg)
	if uint64(len(routines)) != res.Build.Builds {
		t.Errorf("hook saw %d routines, builder reports %d", len(routines), res.Build.Builds)
	}
	for _, r := range routines {
		if r.Size() == 0 || r.BranchPC == 0 && r.SpawnPC == 0 && r.SeqDelta == 0 {
			t.Errorf("malformed routine from hook: %+v", r)
		}
	}
}

func TestDefaultProfileTemplate(t *testing.T) {
	p := DefaultProfile("x", 9)
	if p.Name != "x" || p.Seed != 9 || p.Kernels <= 0 || p.Footprint <= 0 {
		t.Errorf("template malformed: %+v", p)
	}
	// It must generate and run.
	w := CustomWorkload(p)
	cfg := BaselineConfig()
	cfg.MaxInsts = 30_000
	if r := Run(w, cfg); r.Insts == 0 {
		t.Error("template workload did not run")
	}
}

// TestSMTAPI exercises the root-package SMT surface end to end:
// ParseSMTSpec builds the config, RunSMT co-schedules workloads
// directly, and SMTStudy runs the experiment wrapper.
func TestSMTAPI(t *testing.T) {
	smt, err := ParseSMTSpec("comp+li:icount:pathcache")
	if err != nil {
		t.Fatal(err)
	}
	if len(smt.Contexts) != 2 || smt.FetchPolicy != FetchICount || !smt.SharedPathCache {
		t.Fatalf("ParseSMTSpec: %+v", smt)
	}
	if _, err := ParseSMTSpec("comp+bogus"); err == nil {
		t.Error("bogus SMT spec accepted")
	}

	cfg := DefaultConfig()
	cfg.MaxInsts = 30_000
	cfg.SMT.FetchPolicy = FetchRoundRobin
	ws := []*Workload{MustWorkload("comp"), MustWorkload("li")}
	res, err := RunSMT(context.Background(), ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contexts) != 2 || res.IPC() <= 0 || res.Cycles == 0 {
		t.Fatalf("RunSMT result malformed: %+v", res)
	}
	for i, c := range res.Contexts {
		if c.Insts == 0 {
			t.Errorf("context %d retired nothing", i)
		}
	}

	o := ExperimentOptions{TimingInsts: 30_000, ProfileInsts: 30_000, SMT: smt}
	study, err := SMTStudy(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Mixes) != 1 || study.Mixes[0].Name != "comp+li" {
		t.Fatalf("SMTStudy mixes: %+v", study.Mixes)
	}
	out := text(t, study)
	if !strings.Contains(out, "SMT") || !strings.Contains(out, "icount") {
		t.Errorf("SMT study render missing headers:\n%s", out)
	}
}
