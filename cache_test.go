package dpbp_test

import (
	"context"
	"reflect"
	"testing"

	"dpbp"
)

// The run cache's contract has two halves: results must be bit-identical
// to fresh computation (the simulator is deterministic, so memoization is
// invisible), and each unique (program, configuration) run must be
// computed exactly once no matter how many experiments request it.

// cachedOptions is detOptions plus a fresh cache.
func cachedOptions() dpbp.ExperimentOptions {
	o := detOptions()
	o.Cache = dpbp.NewRunCache()
	return o
}

// TestRunCacheExactlyOnce repeats an experiment against one shared cache
// and requires the second pass to compute nothing new: every run and
// profile is served from the cache, observed via the stats counters.
func TestRunCacheExactlyOnce(t *testing.T) {
	o := cachedOptions()
	if _, _, err := dpbp.RunFigure7Set(context.Background(), o); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	first := o.Cache.Stats()
	if first.Computes == 0 {
		t.Fatal("first pass computed nothing — cache not wired into the harness")
	}
	if n := o.Cache.Len(); uint64(n) != first.Computes {
		t.Errorf("cache holds %d entries after %d computes; every compute should cache exactly one value",
			n, first.Computes)
	}

	if _, _, err := dpbp.RunFigure7Set(context.Background(), o); err != nil {
		t.Fatalf("second pass: %v", err)
	}
	second := o.Cache.Stats()
	if second.Computes != first.Computes {
		t.Errorf("second pass recomputed: Computes went %d -> %d, want no change",
			first.Computes, second.Computes)
	}
	if second.Hits <= first.Hits {
		t.Errorf("second pass did not hit the cache: Hits went %d -> %d", first.Hits, second.Hits)
	}
}

// TestRunCacheSharedAcrossExperiments requires experiments that request
// the same underlying runs (Figure 6 and the Figure 7 set share each
// benchmark's baseline) to share cache entries rather than recompute.
func TestRunCacheSharedAcrossExperiments(t *testing.T) {
	o := cachedOptions()
	if _, err := dpbp.Figure6(context.Background(), o); err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	after6 := o.Cache.Stats()
	if _, _, err := dpbp.RunFigure7Set(context.Background(), o); err != nil {
		t.Fatalf("RunFigure7Set: %v", err)
	}
	after7 := o.Cache.Stats()
	if after7.Hits == after6.Hits {
		t.Error("Figure 7 set reused nothing from Figure 6; shared baselines should hit")
	}
}

// TestRunCacheMatchesFresh requires cached results to be deeply equal to
// freshly computed ones, for both a figure and a profile-backed table.
func TestRunCacheMatchesFresh(t *testing.T) {
	ctx := context.Background()

	fresh7, freshErrs, err := dpbp.RunFigure7Set(ctx, detOptions())
	if err != nil {
		t.Fatalf("fresh Figure7 set: %v", err)
	}
	cached7, cachedErrs, err := dpbp.RunFigure7Set(ctx, cachedOptions())
	if err != nil {
		t.Fatalf("cached Figure7 set: %v", err)
	}
	if !reflect.DeepEqual(fresh7, cached7) || !reflect.DeepEqual(freshErrs, cachedErrs) {
		t.Error("cached Figure 7 runs differ from fresh ones")
	}

	freshT1, err := dpbp.Table1(ctx, detOptions())
	if err != nil {
		t.Fatalf("fresh Table1: %v", err)
	}
	cachedT1, err := dpbp.Table1(ctx, cachedOptions())
	if err != nil {
		t.Fatalf("cached Table1: %v", err)
	}
	if !reflect.DeepEqual(freshT1, cachedT1) {
		t.Error("cached Table 1 differs from fresh one")
	}
}
