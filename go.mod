module dpbp

go 1.22
